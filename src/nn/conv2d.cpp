#include "nn/conv2d.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/conv_lowering.hpp"
#include "core/gemm.hpp"
#include "runtime/thread_pool.hpp"
#include "support/check.hpp"
#include "support/simd.hpp"
#include "tensor/buffer_pool.hpp"

namespace flightnn::nn {

namespace {
// He-normal initialization, the conventional choice for (leaky) ReLU nets.
tensor::Tensor he_init(tensor::Shape shape, std::int64_t fan_in,
                       support::Rng& rng) {
  const float stddev = std::sqrt(2.0F / static_cast<float>(fan_in));
  return tensor::Tensor::randn(std::move(shape), rng, 0.0F, stddev);
}

// Memory budget for the lowered patch matrix of the batched GEMM path. The
// batch is processed in image groups sized so patch * group * out_hw floats
// stay under the budget; the group size is a pure function of the layer
// shapes -- never of the thread count -- so the (serial, ascending) group
// accumulation order of the weight gradient is fixed and the result is
// bit-identical at any thread count.
constexpr std::int64_t kGroupColsBudgetBytes = std::int64_t{32} << 20;

std::int64_t cols_group(std::int64_t batch, std::int64_t patch,
                        std::int64_t out_hw) {
  const std::int64_t fit =
      kGroupColsBudgetBytes /
      (patch * out_hw * static_cast<std::int64_t>(sizeof(float)));
  return std::clamp<std::int64_t>(fit, 1, batch);
}

// Cost hints (ns per image) for the memory-bound lowering loops around the
// batched GEMMs; order of magnitude only, they gate the pool for tiny
// layers (runtime::CostHint).
double lowering_ns(std::int64_t patch, std::int64_t out_hw) {
  return static_cast<double>(patch) * static_cast<double>(out_hw) * 0.3;
}
double copy_ns(std::int64_t numel) { return static_cast<double>(numel) * 0.2; }

// GEMM-output-to-NCHW scatter with fused bias add (multiversioned: the
// AVX2 clone moves eight floats per instruction).
FLIGHTNN_SIMD_CLONES
void scatter_bias(const float* src, float* dst, std::int64_t n, float b) {
  for (std::int64_t i = 0; i < n; ++i) dst[i] = src[i] + b;
}
}  // namespace

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t padding,
               bool with_bias, support::Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      has_bias_(with_bias),
      weight_(he_init(tensor::Shape{out_channels, in_channels, kernel, kernel},
                      in_channels * kernel * kernel, rng),
              "conv.weight"),
      bias_(tensor::Tensor(tensor::Shape{out_channels}), "conv.bias",
            /*apply_decay=*/false) {
  FLIGHTNN_CHECK(in_channels > 0 && out_channels > 0 && kernel > 0 &&
                     stride > 0 && padding >= 0,
                 "Conv2d: invalid geometry in=", in_channels,
                 " out=", out_channels, " kernel=", kernel, " stride=", stride,
                 " padding=", padding);
}

tensor::Tensor Conv2d::quantized_weight() {
  return transform_ ? transform_->forward(weight_.value) : weight_.value;
}

void Conv2d::prepare_forward(const tensor::Tensor& input, bool training) {
  const auto& s = input.shape();
  FLIGHTNN_CHECK(s.rank() == 4 && s[1] == in_channels_,
                 "Conv2d::forward: expected [N, ", in_channels_,
                 ", H, W] input, got ", s.to_string());
  FLIGHTNN_CHECK(s[2] + 2 * padding_ >= kernel_ && s[3] + 2 * padding_ >= kernel_,
                 "Conv2d::forward: padded input ", s.to_string(),
                 " smaller than kernel ", kernel_);
  geometry_ = tensor::ConvGeometry{in_channels_, s[2], s[3], kernel_, stride_,
                                   padding_};
  effective_weight_ = quantized_weight();
  if (training) input_cache_ = input;
}

tensor::Tensor Conv2d::forward(const tensor::Tensor& input, bool training) {
  prepare_forward(input, training);
  return train_kernel_path() == TrainKernelPath::kGemm
             ? forward_gemm(input)
             : forward_naive(input);
}

tensor::Tensor Conv2d::forward_reference(const tensor::Tensor& input,
                                         bool training) {
  prepare_forward(input, training);
  return forward_naive(input);
}

tensor::Tensor Conv2d::forward_gemm(const tensor::Tensor& input) {
  const auto& s = input.shape();
  const std::int64_t batch = s[0];
  const std::int64_t out_h = geometry_.out_h();
  const std::int64_t out_w = geometry_.out_w();
  const std::int64_t out_hw = out_h * out_w;
  const std::int64_t patch = geometry_.patch_size();
  const std::int64_t in_image = in_channels_ * s[2] * s[3];
  const std::int64_t out_image = out_channels_ * out_hw;

  tensor::Tensor output =
      tensor::Tensor::uninitialized(tensor::Shape{batch, out_channels_, out_h,
                                                  out_w});
  // Batched lowering: a whole image group shares one [patch, group*out_hw]
  // patch matrix and one blocked GEMM -- per-image GEMMs of the Table-1
  // layers are too small to reach the core's peak. The lowering and scatter
  // loops are batch-parallel (disjoint per image); the GEMM parallelizes
  // internally over C tiles. All partitions leave per-element arithmetic
  // untouched, so the result is bit-identical to serial at any thread count.
  const std::int64_t group = cols_group(batch, patch, out_hw);
  std::vector<float> cols =
      tensor::pool::acquire(static_cast<std::size_t>(group * patch * out_hw));
  std::vector<float> gemm_out = tensor::pool::acquire(
      static_cast<std::size_t>(out_channels_ * group * out_hw));
  for (std::int64_t g0 = 0; g0 < batch; g0 += group) {
    const std::int64_t g_end = std::min(batch, g0 + group);
    const std::int64_t ld = (g_end - g0) * out_hw;
    runtime::parallel_for(
        g0, g_end, 1, runtime::CostHint{lowering_ns(patch, out_hw)},
        [&](std::int64_t n_begin, std::int64_t n_end) {
          for (std::int64_t n = n_begin; n < n_end; ++n) {
            core::im2col_strided(input.data() + n * in_image, geometry_,
                                 cols.data() + (n - g0) * out_hw, ld);
          }
        });
    // [out_ch, patch] x [patch, group*out_hw]
    core::gemm(effective_weight_.data(), cols.data(), gemm_out.data(),
               out_channels_, patch, ld);
    runtime::parallel_for(
        g0, g_end, 1, runtime::CostHint{copy_ns(out_image)},
        [&](std::int64_t n_begin, std::int64_t n_end) {
          for (std::int64_t n = n_begin; n < n_end; ++n) {
            for (std::int64_t o = 0; o < out_channels_; ++o) {
              const float* src = gemm_out.data() + o * ld + (n - g0) * out_hw;
              float* dst = output.data() + n * out_image + o * out_hw;
              const float b = has_bias_ ? bias_.value[o] : 0.0F;
              scatter_bias(src, dst, out_hw, b);
            }
          }
        });
  }
  tensor::pool::release(std::move(cols));
  tensor::pool::release(std::move(gemm_out));
  return output;
}

tensor::Tensor Conv2d::forward_naive(const tensor::Tensor& input) {
  const auto& s = input.shape();
  const std::int64_t batch = s[0];
  const std::int64_t out_h = geometry_.out_h();
  const std::int64_t out_w = geometry_.out_w();
  const std::int64_t out_hw = out_h * out_w;
  const std::int64_t patch = geometry_.patch_size();
  const std::int64_t in_image = in_channels_ * s[2] * s[3];
  const std::int64_t out_image = out_channels_ * out_hw;

  tensor::Tensor output(tensor::Shape{batch, out_channels_, out_h, out_w});
  runtime::parallel_for(0, batch, 1, [&](std::int64_t n_begin,
                                         std::int64_t n_end) {
    std::vector<float> columns(static_cast<std::size_t>(patch * out_hw));
    for (std::int64_t n = n_begin; n < n_end; ++n) {
      tensor::im2col(input.data() + n * in_image, geometry_, columns.data());
      tensor::gemm(effective_weight_.data(), columns.data(),
                   output.data() + n * out_image, out_channels_, patch, out_hw);
      if (has_bias_) {
        for (std::int64_t o = 0; o < out_channels_; ++o) {
          float* plane = output.data() + n * out_image + o * out_hw;
          const float b = bias_.value[o];
          for (std::int64_t i = 0; i < out_hw; ++i) plane[i] += b;
        }
      }
    }
  });
  return output;
}

void Conv2d::check_backward(const tensor::Tensor& grad_output) const {
  FLIGHTNN_CHECK(!input_cache_.empty(),
                 "Conv2d::backward before forward(training=true)");
  FLIGHTNN_CHECK_SHAPE(
      grad_output.shape(),
      (tensor::Shape{input_cache_.shape()[0], out_channels_, geometry_.out_h(),
                     geometry_.out_w()}),
      "Conv2d::backward");
}

void Conv2d::finish_backward(const tensor::Tensor& grad_output,
                             const tensor::Tensor& grad_wq) {
  if (has_bias_) {
    const std::int64_t batch = input_cache_.shape()[0];
    const std::int64_t out_hw = geometry_.out_h() * geometry_.out_w();
    const std::int64_t out_image = out_channels_ * out_hw;
    for (std::int64_t n = 0; n < batch; ++n) {
      for (std::int64_t o = 0; o < out_channels_; ++o) {
        const float* gy = grad_output.data() + n * out_image + o * out_hw;
        double acc = 0.0;
        for (std::int64_t i = 0; i < out_hw; ++i) acc += gy[i];
        bias_.grad[o] += static_cast<float>(acc);
      }
    }
  }
  // Route dL/d(wq) to the full-precision weights (STE or transform-specific).
  if (transform_) {
    transform_->backward(weight_.value, grad_wq, weight_.grad);
  } else {
    weight_.grad += grad_wq;
  }
}

tensor::Tensor Conv2d::backward(const tensor::Tensor& grad_output) {
  check_backward(grad_output);
  return train_kernel_path() == TrainKernelPath::kGemm
             ? backward_gemm(grad_output)
             : backward_naive(grad_output);
}

tensor::Tensor Conv2d::backward_reference(const tensor::Tensor& grad_output) {
  check_backward(grad_output);
  return backward_naive(grad_output);
}

tensor::Tensor Conv2d::backward_gemm(const tensor::Tensor& grad_output) {
  const auto& in_shape = input_cache_.shape();
  const std::int64_t batch = in_shape[0];
  const std::int64_t out_hw = geometry_.out_h() * geometry_.out_w();
  const std::int64_t patch = geometry_.patch_size();
  const std::int64_t in_image = in_channels_ * in_shape[2] * in_shape[3];
  const std::int64_t out_image = out_channels_ * out_hw;
  const std::int64_t w_numel = out_channels_ * patch;

  tensor::Tensor grad_wq =
      tensor::Tensor::uninitialized(weight_.value.shape());
  tensor::Tensor grad_input(in_shape);  // zeroed: col2im accumulates

  // Same batched-lowering scheme as forward_gemm, with the gradient of the
  // output first transposed into [out_ch, group*out_hw] so both gradient
  // GEMMs run over one big matrix per group:
  //   dW^T[patch, out_ch]  += cols . dY^T   (accumulated across groups,
  //                                          serially in ascending order)
  //   dCols[patch, g*hw]    = W^T . dY      (folded back per image by
  //                                          col2im)
  // The weight gradient is accumulated transposed so the GEMM's M dimension
  // is patch (up to in_ch*k*k) instead of out_ch; the one-off transpose into
  // grad_wq at the end is w_numel elements.
  const std::int64_t group = cols_group(batch, patch, out_hw);
  std::vector<float> cols =
      tensor::pool::acquire(static_cast<std::size_t>(group * patch * out_hw));
  std::vector<float> grad_out_t = tensor::pool::acquire(
      static_cast<std::size_t>(out_channels_ * group * out_hw));
  std::vector<float> grad_cols =
      tensor::pool::acquire(static_cast<std::size_t>(group * patch * out_hw));
  std::vector<float> grad_wt =
      tensor::pool::acquire(static_cast<std::size_t>(w_numel));

  for (std::int64_t g0 = 0; g0 < batch; g0 += group) {
    const std::int64_t g_end = std::min(batch, g0 + group);
    const std::int64_t ld = (g_end - g0) * out_hw;
    runtime::parallel_for(
        g0, g_end, 1,
        runtime::CostHint{lowering_ns(patch, out_hw) + copy_ns(out_image)},
        [&](std::int64_t n_begin, std::int64_t n_end) {
          for (std::int64_t n = n_begin; n < n_end; ++n) {
            core::im2col_strided(input_cache_.data() + n * in_image, geometry_,
                                 cols.data() + (n - g0) * out_hw, ld);
            for (std::int64_t o = 0; o < out_channels_; ++o) {
              std::memcpy(grad_out_t.data() + o * ld + (n - g0) * out_hw,
                          grad_output.data() + n * out_image + o * out_hw,
                          static_cast<std::size_t>(out_hw) * sizeof(float));
            }
          }
        });
    core::gemm_nt(cols.data(), grad_out_t.data(), grad_wt.data(), patch, ld,
                  out_channels_, /*accumulate=*/g0 > 0);
    core::gemm_tn(effective_weight_.data(), grad_out_t.data(),
                  grad_cols.data(), patch, out_channels_, ld);
    runtime::parallel_for(
        g0, g_end, 1, runtime::CostHint{lowering_ns(patch, out_hw)},
        [&](std::int64_t n_begin, std::int64_t n_end) {
          for (std::int64_t n = n_begin; n < n_end; ++n) {
            core::col2im_strided(grad_cols.data() + (n - g0) * out_hw, ld,
                                 geometry_, grad_input.data() + n * in_image);
          }
        });
  }
  for (std::int64_t o = 0; o < out_channels_; ++o) {
    for (std::int64_t p = 0; p < patch; ++p) {
      grad_wq[o * patch + p] = grad_wt[p * out_channels_ + o];
    }
  }
  tensor::pool::release(std::move(cols));
  tensor::pool::release(std::move(grad_out_t));
  tensor::pool::release(std::move(grad_cols));
  tensor::pool::release(std::move(grad_wt));

  finish_backward(grad_output, grad_wq);
  return grad_input;
}

tensor::Tensor Conv2d::backward_naive(const tensor::Tensor& grad_output) {
  const auto& in_shape = input_cache_.shape();
  const std::int64_t batch = in_shape[0];
  const std::int64_t out_hw = geometry_.out_h() * geometry_.out_w();
  const std::int64_t patch = geometry_.patch_size();
  const std::int64_t in_image = in_channels_ * in_shape[2] * in_shape[3];
  const std::int64_t out_image = out_channels_ * out_hw;

  tensor::Tensor grad_wq(weight_.value.shape());
  tensor::Tensor grad_input(in_shape);
  std::vector<float> columns(static_cast<std::size_t>(patch * out_hw));
  std::vector<float> grad_columns(static_cast<std::size_t>(patch * out_hw));

  for (std::int64_t n = 0; n < batch; ++n) {
    const float* grad_out_n = grad_output.data() + n * out_image;
    // Weight gradient: dW[o, p] += dY[o, :] . cols[p, :]^T
    tensor::im2col(input_cache_.data() + n * in_image, geometry_, columns.data());
    for (std::int64_t o = 0; o < out_channels_; ++o) {
      const float* gy = grad_out_n + o * out_hw;
      float* gw = grad_wq.data() + o * patch;
      for (std::int64_t p = 0; p < patch; ++p) {
        const float* col = columns.data() + p * out_hw;
        double acc = 0.0;
        for (std::int64_t i = 0; i < out_hw; ++i) acc += static_cast<double>(gy[i]) * col[i];
        gw[p] += static_cast<float>(acc);
      }
    }
    // Input gradient: dCols[p, :] = W^T[p, o] dY[o, :], then col2im.
    std::fill(grad_columns.begin(), grad_columns.end(), 0.0F);
    for (std::int64_t o = 0; o < out_channels_; ++o) {
      const float* wrow = effective_weight_.data() + o * patch;
      const float* gy = grad_out_n + o * out_hw;
      for (std::int64_t p = 0; p < patch; ++p) {
        const float w = wrow[p];
        if (w == 0.0F) continue;
        float* gc = grad_columns.data() + p * out_hw;
        for (std::int64_t i = 0; i < out_hw; ++i) gc[i] += w * gy[i];
      }
    }
    tensor::col2im(grad_columns.data(), geometry_, grad_input.data() + n * in_image);
  }

  finish_backward(grad_output, grad_wq);
  return grad_input;
}

std::vector<Parameter*> Conv2d::parameters() {
  std::vector<Parameter*> params{&weight_};
  if (has_bias_) params.push_back(&bias_);
  return params;
}

}  // namespace flightnn::nn
