#include "nn/conv2d.hpp"

#include <cmath>

#include "runtime/thread_pool.hpp"
#include "support/check.hpp"

namespace flightnn::nn {

namespace {
// He-normal initialization, the conventional choice for (leaky) ReLU nets.
tensor::Tensor he_init(tensor::Shape shape, std::int64_t fan_in,
                       support::Rng& rng) {
  const float stddev = std::sqrt(2.0F / static_cast<float>(fan_in));
  return tensor::Tensor::randn(std::move(shape), rng, 0.0F, stddev);
}
}  // namespace

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t padding,
               bool with_bias, support::Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      has_bias_(with_bias),
      weight_(he_init(tensor::Shape{out_channels, in_channels, kernel, kernel},
                      in_channels * kernel * kernel, rng),
              "conv.weight"),
      bias_(tensor::Tensor(tensor::Shape{out_channels}), "conv.bias",
            /*apply_decay=*/false) {
  FLIGHTNN_CHECK(in_channels > 0 && out_channels > 0 && kernel > 0 &&
                     stride > 0 && padding >= 0,
                 "Conv2d: invalid geometry in=", in_channels,
                 " out=", out_channels, " kernel=", kernel, " stride=", stride,
                 " padding=", padding);
}

tensor::Tensor Conv2d::quantized_weight() {
  return transform_ ? transform_->forward(weight_.value) : weight_.value;
}

tensor::Tensor Conv2d::forward(const tensor::Tensor& input, bool training) {
  const auto& s = input.shape();
  FLIGHTNN_CHECK(s.rank() == 4 && s[1] == in_channels_,
                 "Conv2d::forward: expected [N, ", in_channels_,
                 ", H, W] input, got ", s.to_string());
  FLIGHTNN_CHECK(s[2] + 2 * padding_ >= kernel_ && s[3] + 2 * padding_ >= kernel_,
                 "Conv2d::forward: padded input ", s.to_string(),
                 " smaller than kernel ", kernel_);
  geometry_ = tensor::ConvGeometry{in_channels_, s[2], s[3], kernel_, stride_,
                                   padding_};
  const std::int64_t batch = s[0];
  const std::int64_t out_h = geometry_.out_h();
  const std::int64_t out_w = geometry_.out_w();
  const std::int64_t out_hw = out_h * out_w;
  const std::int64_t patch = geometry_.patch_size();

  effective_weight_ = quantized_weight();
  if (training) input_cache_ = input;

  tensor::Tensor output(tensor::Shape{batch, out_channels_, out_h, out_w});
  const std::int64_t in_image = in_channels_ * s[2] * s[3];
  const std::int64_t out_image = out_channels_ * out_hw;
  // Range kernel over batch elements: each image's im2col buffer and output
  // block are private to the chunk, so parallel execution is bit-identical
  // to serial (the per-image arithmetic is untouched).
  runtime::parallel_for(0, batch, 1, [&](std::int64_t n_begin,
                                         std::int64_t n_end) {
    std::vector<float> columns(static_cast<std::size_t>(patch * out_hw));
    for (std::int64_t n = n_begin; n < n_end; ++n) {
      tensor::im2col(input.data() + n * in_image, geometry_, columns.data());
      // [out_ch, patch] x [patch, out_hw]
      tensor::gemm(effective_weight_.data(), columns.data(),
                   output.data() + n * out_image, out_channels_, patch, out_hw);
      if (has_bias_) {
        for (std::int64_t o = 0; o < out_channels_; ++o) {
          float* plane = output.data() + n * out_image + o * out_hw;
          const float b = bias_.value[o];
          for (std::int64_t i = 0; i < out_hw; ++i) plane[i] += b;
        }
      }
    }
  });
  return output;
}

tensor::Tensor Conv2d::backward(const tensor::Tensor& grad_output) {
  FLIGHTNN_CHECK(!input_cache_.empty(),
                 "Conv2d::backward before forward(training=true)");
  FLIGHTNN_CHECK_SHAPE(
      grad_output.shape(),
      (tensor::Shape{input_cache_.shape()[0], out_channels_, geometry_.out_h(),
                     geometry_.out_w()}),
      "Conv2d::backward");
  const auto& in_shape = input_cache_.shape();
  const std::int64_t batch = in_shape[0];
  const std::int64_t out_h = geometry_.out_h();
  const std::int64_t out_w = geometry_.out_w();
  const std::int64_t out_hw = out_h * out_w;
  const std::int64_t patch = geometry_.patch_size();
  const std::int64_t in_image = in_channels_ * in_shape[2] * in_shape[3];
  const std::int64_t out_image = out_channels_ * out_hw;

  tensor::Tensor grad_wq(weight_.value.shape());
  tensor::Tensor grad_input(in_shape);
  std::vector<float> columns(static_cast<std::size_t>(patch * out_hw));
  std::vector<float> grad_columns(static_cast<std::size_t>(patch * out_hw));

  for (std::int64_t n = 0; n < batch; ++n) {
    const float* grad_out_n = grad_output.data() + n * out_image;
    // Weight gradient: dW[o, p] += dY[o, :] . cols[p, :]^T
    tensor::im2col(input_cache_.data() + n * in_image, geometry_, columns.data());
    for (std::int64_t o = 0; o < out_channels_; ++o) {
      const float* gy = grad_out_n + o * out_hw;
      float* gw = grad_wq.data() + o * patch;
      for (std::int64_t p = 0; p < patch; ++p) {
        const float* col = columns.data() + p * out_hw;
        double acc = 0.0;
        for (std::int64_t i = 0; i < out_hw; ++i) acc += static_cast<double>(gy[i]) * col[i];
        gw[p] += static_cast<float>(acc);
      }
    }
    // Input gradient: dCols[p, :] = W^T[p, o] dY[o, :], then col2im.
    std::fill(grad_columns.begin(), grad_columns.end(), 0.0F);
    for (std::int64_t o = 0; o < out_channels_; ++o) {
      const float* wrow = effective_weight_.data() + o * patch;
      const float* gy = grad_out_n + o * out_hw;
      for (std::int64_t p = 0; p < patch; ++p) {
        const float w = wrow[p];
        if (w == 0.0F) continue;
        float* gc = grad_columns.data() + p * out_hw;
        for (std::int64_t i = 0; i < out_hw; ++i) gc[i] += w * gy[i];
      }
    }
    tensor::col2im(grad_columns.data(), geometry_, grad_input.data() + n * in_image);
  }

  if (has_bias_) {
    for (std::int64_t n = 0; n < batch; ++n) {
      for (std::int64_t o = 0; o < out_channels_; ++o) {
        const float* gy = grad_output.data() + n * out_image + o * out_hw;
        double acc = 0.0;
        for (std::int64_t i = 0; i < out_hw; ++i) acc += gy[i];
        bias_.grad[o] += static_cast<float>(acc);
      }
    }
  }

  // Route dL/d(wq) to the full-precision weights (STE or transform-specific).
  if (transform_) {
    transform_->backward(weight_.value, grad_wq, weight_.grad);
  } else {
    weight_.grad += grad_wq;
  }
  return grad_input;
}

std::vector<Parameter*> Conv2d::parameters() {
  std::vector<Parameter*> params{&weight_};
  if (has_bias_) params.push_back(&bias_);
  return params;
}

}  // namespace flightnn::nn
