#pragma once

// Softmax cross-entropy over [N, classes] logits with integer labels, the
// L_CE of Algorithm 1. Returns the mean loss over the batch; backward
// produces dL/d(logits) already scaled by 1/N.

#include <vector>

#include "tensor/tensor.hpp"

namespace flightnn::nn {

class SoftmaxCrossEntropy {
 public:
  // Computes mean cross-entropy; caches softmax probabilities for backward.
  float forward(const tensor::Tensor& logits, const std::vector<int>& labels);

  // dL/d(logits), shape equal to the logits passed to forward.
  [[nodiscard]] tensor::Tensor backward() const;

  // Softmax probabilities from the last forward (for top-k metrics).
  [[nodiscard]] const tensor::Tensor& probabilities() const { return probs_; }

 private:
  tensor::Tensor probs_;
  std::vector<int> labels_;
};

// Fraction of rows whose true label is among the `k` largest logits.
double top_k_accuracy(const tensor::Tensor& logits, const std::vector<int>& labels,
                      int k);

}  // namespace flightnn::nn
