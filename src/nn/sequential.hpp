#pragma once

// Sequential: an ordered container of layers that is itself a Layer, so
// residual blocks can nest it. Also the whole-model type used by the
// builders in models/.

#include <functional>
#include <memory>
#include <vector>

#include "nn/layer.hpp"

namespace flightnn::nn {

class Sequential final : public Layer {
 public:
  Sequential() = default;

  // Append a layer; returns a non-owning pointer for convenient wiring.
  Layer* add(LayerPtr layer);

  template <typename L, typename... Args>
  L* emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L* raw = layer.get();
    layers_.push_back(std::move(layer));
    return raw;
  }

  tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  [[nodiscard]] std::string name() const override { return "sequential"; }

  void for_each_child(const std::function<void(Layer&)>& visitor) override {
    for (auto& layer : layers_) visitor(*layer);
  }

  [[nodiscard]] std::size_t size() const { return layers_.size(); }
  [[nodiscard]] Layer& layer(std::size_t index) { return *layers_[index]; }
  [[nodiscard]] const std::vector<LayerPtr>& layers() const { return layers_; }

  // All weight transforms installed anywhere in the (possibly nested) tree.
  std::vector<quant::WeightTransform*> transforms();

  // Depth-first visit of every leaf layer (descends into nested containers).
  void visit(const std::function<void(Layer&)>& visitor);

 private:
  std::vector<LayerPtr> layers_;
};

}  // namespace flightnn::nn
