#include "nn/batchnorm.hpp"

#include <cmath>

#include "support/check.hpp"

namespace flightnn::nn {

BatchNorm2d::BatchNorm2d(std::int64_t channels, float momentum, float epsilon)
    : channels_(channels),
      momentum_(momentum),
      epsilon_(epsilon),
      gamma_(tensor::Tensor(tensor::Shape{channels}, 1.0F), "bn.gamma",
             /*apply_decay=*/false),
      beta_(tensor::Tensor(tensor::Shape{channels}), "bn.beta",
            /*apply_decay=*/false),
      running_mean_(tensor::Shape{channels}),
      running_var_(tensor::Shape{channels}, 1.0F) {
  FLIGHTNN_CHECK(channels > 0, "BatchNorm2d: channels must be > 0, got ",
                 channels);
  FLIGHTNN_CHECK(epsilon > 0.0F, "BatchNorm2d: epsilon must be > 0, got ",
                 epsilon);
}

tensor::Tensor BatchNorm2d::forward(const tensor::Tensor& input, bool training) {
  const auto& s = input.shape();
  FLIGHTNN_CHECK(s.rank() == 4 && s[1] == channels_,
                 "BatchNorm2d::forward: expected [N, ", channels_,
                 ", H, W] input, got ", s.to_string());
  const std::int64_t batch = s[0], hw = s[2] * s[3];
  const std::int64_t plane = hw;
  const std::int64_t image = channels_ * hw;
  const double count = static_cast<double>(batch * hw);

  tensor::Tensor output(s);
  batch_mean_.assign(static_cast<std::size_t>(channels_), 0.0F);
  batch_inv_std_.assign(static_cast<std::size_t>(channels_), 0.0F);

  for (std::int64_t c = 0; c < channels_; ++c) {
    double mean = 0.0, var = 0.0;
    if (training) {
      for (std::int64_t n = 0; n < batch; ++n) {
        const float* p = input.data() + n * image + c * plane;
        for (std::int64_t i = 0; i < hw; ++i) mean += p[i];
      }
      mean /= count;
      for (std::int64_t n = 0; n < batch; ++n) {
        const float* p = input.data() + n * image + c * plane;
        for (std::int64_t i = 0; i < hw; ++i) {
          const double d = p[i] - mean;
          var += d * d;
        }
      }
      var /= count;
      running_mean_[c] = (1.0F - momentum_) * running_mean_[c] +
                         momentum_ * static_cast<float>(mean);
      running_var_[c] = (1.0F - momentum_) * running_var_[c] +
                        momentum_ * static_cast<float>(var);
    } else {
      mean = running_mean_[c];
      var = running_var_[c];
    }
    const float inv_std = 1.0F / std::sqrt(static_cast<float>(var) + epsilon_);
    batch_mean_[static_cast<std::size_t>(c)] = static_cast<float>(mean);
    batch_inv_std_[static_cast<std::size_t>(c)] = inv_std;
    const float g = gamma_.value[c], b = beta_.value[c];
    for (std::int64_t n = 0; n < batch; ++n) {
      const float* in_p = input.data() + n * image + c * plane;
      float* out_p = output.data() + n * image + c * plane;
      for (std::int64_t i = 0; i < hw; ++i) {
        out_p[i] = g * (in_p[i] - static_cast<float>(mean)) * inv_std + b;
      }
    }
  }

  if (training) {
    input_cache_ = input;
    // Store normalized values to avoid recomputing in backward.
    normalized_cache_ = tensor::Tensor(s);
    for (std::int64_t c = 0; c < channels_; ++c) {
      const float mean = batch_mean_[static_cast<std::size_t>(c)];
      const float inv_std = batch_inv_std_[static_cast<std::size_t>(c)];
      for (std::int64_t n = 0; n < batch; ++n) {
        const float* in_p = input.data() + n * image + c * plane;
        float* x_hat = normalized_cache_.data() + n * image + c * plane;
        for (std::int64_t i = 0; i < hw; ++i) x_hat[i] = (in_p[i] - mean) * inv_std;
      }
    }
  }
  return output;
}

tensor::Tensor BatchNorm2d::backward(const tensor::Tensor& grad_output) {
  FLIGHTNN_CHECK(!input_cache_.empty(),
                 "BatchNorm2d::backward before forward(training=true)");
  FLIGHTNN_CHECK_SHAPE(grad_output.shape(), input_cache_.shape(),
                       "BatchNorm2d::backward");
  const auto& s = input_cache_.shape();
  const std::int64_t batch = s[0], hw = s[2] * s[3];
  const std::int64_t plane = hw, image = channels_ * hw;
  const double count = static_cast<double>(batch * hw);

  tensor::Tensor grad_input(s);
  for (std::int64_t c = 0; c < channels_; ++c) {
    // Standard batch-norm backward:
    // dx = (gamma * inv_std / m) * (m*dy - sum(dy) - x_hat * sum(dy*x_hat))
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (std::int64_t n = 0; n < batch; ++n) {
      const float* dy = grad_output.data() + n * image + c * plane;
      const float* x_hat = normalized_cache_.data() + n * image + c * plane;
      for (std::int64_t i = 0; i < hw; ++i) {
        sum_dy += dy[i];
        sum_dy_xhat += static_cast<double>(dy[i]) * x_hat[i];
      }
    }
    gamma_.grad[c] += static_cast<float>(sum_dy_xhat);
    beta_.grad[c] += static_cast<float>(sum_dy);

    const float g = gamma_.value[c];
    const float inv_std = batch_inv_std_[static_cast<std::size_t>(c)];
    const float scale = g * inv_std / static_cast<float>(count);
    for (std::int64_t n = 0; n < batch; ++n) {
      const float* dy = grad_output.data() + n * image + c * plane;
      const float* x_hat = normalized_cache_.data() + n * image + c * plane;
      float* dx = grad_input.data() + n * image + c * plane;
      for (std::int64_t i = 0; i < hw; ++i) {
        dx[i] = scale * (static_cast<float>(count) * dy[i] -
                         static_cast<float>(sum_dy) -
                         x_hat[i] * static_cast<float>(sum_dy_xhat));
      }
    }
  }
  return grad_input;
}

std::vector<Parameter*> BatchNorm2d::parameters() { return {&gamma_, &beta_}; }

}  // namespace flightnn::nn
