#include "nn/batchnorm.hpp"

#include <cmath>

#include "support/check.hpp"
#include "support/simd.hpp"

namespace flightnn::nn {

namespace {

// Per-plane reduction and normalization bodies, multiversioned so the
// autovectorizer can emit AVX2/FMA code in the fast clone.
//
// The channel statistics reduce through four fixed double lanes combined in
// a fixed order -- the algorithm depends only on the plane length, never on
// the thread count (the channel loop is serial anyway), so results are
// deterministic. Lanes are doubles: the compiler may not reassociate FP
// sums itself, but four independent accumulators vectorize as-is.
FLIGHTNN_SIMD_CLONES
double sum_plane(const float* p, std::int64_t n) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a0 += p[i];
    a1 += p[i + 1];
    a2 += p[i + 2];
    a3 += p[i + 3];
  }
  double acc = (a0 + a1) + (a2 + a3);
  for (; i < n; ++i) acc += p[i];
  return acc;
}

FLIGHTNN_SIMD_CLONES
double sum_sq_dev_plane(const float* p, std::int64_t n, double mean) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double d0 = p[i] - mean, d1 = p[i + 1] - mean;
    const double d2 = p[i + 2] - mean, d3 = p[i + 3] - mean;
    a0 += d0 * d0;
    a1 += d1 * d1;
    a2 += d2 * d2;
    a3 += d3 * d3;
  }
  double acc = (a0 + a1) + (a2 + a3);
  for (; i < n; ++i) {
    const double d = p[i] - mean;
    acc += d * d;
  }
  return acc;
}

// sum(dy) and sum(dy * x_hat) for the backward statistics, fused in one
// sweep over the two arrays.
FLIGHTNN_SIMD_CLONES
void dot_stats_plane(const float* dy, const float* x_hat, std::int64_t n,
                     double* sum_dy, double* sum_dy_xhat) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  double d0 = 0.0, d1 = 0.0, d2 = 0.0, d3 = 0.0;
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += dy[i];
    s1 += dy[i + 1];
    s2 += dy[i + 2];
    s3 += dy[i + 3];
    d0 += static_cast<double>(dy[i]) * x_hat[i];
    d1 += static_cast<double>(dy[i + 1]) * x_hat[i + 1];
    d2 += static_cast<double>(dy[i + 2]) * x_hat[i + 2];
    d3 += static_cast<double>(dy[i + 3]) * x_hat[i + 3];
  }
  double s = (s0 + s1) + (s2 + s3);
  double d = (d0 + d1) + (d2 + d3);
  for (; i < n; ++i) {
    s += dy[i];
    d += static_cast<double>(dy[i]) * x_hat[i];
  }
  *sum_dy += s;
  *sum_dy_xhat += d;
}

// Per-plane normalization bodies.
FLIGHTNN_SIMD_CLONES
void bn_normalize_train(const float* in, float* x_hat, float* out,
                        std::int64_t n, float mean, float inv_std, float g,
                        float b) {
  for (std::int64_t i = 0; i < n; ++i) {
    const float d = in[i] - mean;
    x_hat[i] = d * inv_std;
    out[i] = g * d * inv_std + b;
  }
}

FLIGHTNN_SIMD_CLONES
void bn_normalize_eval(const float* in, float* out, std::int64_t n, float mean,
                       float inv_std, float g, float b) {
  for (std::int64_t i = 0; i < n; ++i) {
    out[i] = g * (in[i] - mean) * inv_std + b;
  }
}

FLIGHTNN_SIMD_CLONES
void bn_backward_dx(const float* dy, const float* x_hat, float* dx,
                    std::int64_t n, float scale, float count, float sum_dy,
                    float sum_dy_xhat) {
  for (std::int64_t i = 0; i < n; ++i) {
    dx[i] = scale * (count * dy[i] - sum_dy - x_hat[i] * sum_dy_xhat);
  }
}

}  // namespace

BatchNorm2d::BatchNorm2d(std::int64_t channels, float momentum, float epsilon)
    : channels_(channels),
      momentum_(momentum),
      epsilon_(epsilon),
      gamma_(tensor::Tensor(tensor::Shape{channels}, 1.0F), "bn.gamma",
             /*apply_decay=*/false),
      beta_(tensor::Tensor(tensor::Shape{channels}), "bn.beta",
            /*apply_decay=*/false),
      running_mean_(tensor::Shape{channels}),
      running_var_(tensor::Shape{channels}, 1.0F) {
  FLIGHTNN_CHECK(channels > 0, "BatchNorm2d: channels must be > 0, got ",
                 channels);
  FLIGHTNN_CHECK(epsilon > 0.0F, "BatchNorm2d: epsilon must be > 0, got ",
                 epsilon);
}

tensor::Tensor BatchNorm2d::forward(const tensor::Tensor& input, bool training) {
  const auto& s = input.shape();
  FLIGHTNN_CHECK(s.rank() == 4 && s[1] == channels_,
                 "BatchNorm2d::forward: expected [N, ", channels_,
                 ", H, W] input, got ", s.to_string());
  const std::int64_t batch = s[0], hw = s[2] * s[3];
  const std::int64_t plane = hw;
  const std::int64_t image = channels_ * hw;
  const double count = static_cast<double>(batch * hw);

  tensor::Tensor output = tensor::Tensor::uninitialized(s);
  batch_mean_.assign(static_cast<std::size_t>(channels_), 0.0F);
  batch_inv_std_.assign(static_cast<std::size_t>(channels_), 0.0F);
  if (training) normalized_cache_ = tensor::Tensor::uninitialized(s);

  for (std::int64_t c = 0; c < channels_; ++c) {
    double mean = 0.0, var = 0.0;
    if (training) {
      for (std::int64_t n = 0; n < batch; ++n) {
        mean += sum_plane(input.data() + n * image + c * plane, hw);
      }
      mean /= count;
      for (std::int64_t n = 0; n < batch; ++n) {
        var += sum_sq_dev_plane(input.data() + n * image + c * plane, hw, mean);
      }
      var /= count;
      running_mean_[c] = (1.0F - momentum_) * running_mean_[c] +
                         momentum_ * static_cast<float>(mean);
      running_var_[c] = (1.0F - momentum_) * running_var_[c] +
                        momentum_ * static_cast<float>(var);
    } else {
      mean = running_mean_[c];
      var = running_var_[c];
    }
    const float inv_std = 1.0F / std::sqrt(static_cast<float>(var) + epsilon_);
    batch_mean_[static_cast<std::size_t>(c)] = static_cast<float>(mean);
    batch_inv_std_[static_cast<std::size_t>(c)] = inv_std;
    const float g = gamma_.value[c], b = beta_.value[c];
    const float mean_f = static_cast<float>(mean);
    for (std::int64_t n = 0; n < batch; ++n) {
      const float* in_p = input.data() + n * image + c * plane;
      float* out_p = output.data() + n * image + c * plane;
      if (training) {
        // One pass produces both the output and the normalized values the
        // backward pass needs (no separate x_hat sweep, no input copy).
        float* x_hat = normalized_cache_.data() + n * image + c * plane;
        bn_normalize_train(in_p, x_hat, out_p, hw, mean_f, inv_std, g, b);
      } else {
        bn_normalize_eval(in_p, out_p, hw, mean_f, inv_std, g, b);
      }
    }
  }
  return output;
}

tensor::Tensor BatchNorm2d::backward(const tensor::Tensor& grad_output) {
  FLIGHTNN_CHECK(!normalized_cache_.empty(),
                 "BatchNorm2d::backward before forward(training=true)");
  FLIGHTNN_CHECK_SHAPE(grad_output.shape(), normalized_cache_.shape(),
                       "BatchNorm2d::backward");
  const auto& s = normalized_cache_.shape();
  const std::int64_t batch = s[0], hw = s[2] * s[3];
  const std::int64_t plane = hw, image = channels_ * hw;
  const double count = static_cast<double>(batch * hw);

  tensor::Tensor grad_input = tensor::Tensor::uninitialized(s);
  for (std::int64_t c = 0; c < channels_; ++c) {
    // Standard batch-norm backward:
    // dx = (gamma * inv_std / m) * (m*dy - sum(dy) - x_hat * sum(dy*x_hat))
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (std::int64_t n = 0; n < batch; ++n) {
      dot_stats_plane(grad_output.data() + n * image + c * plane,
                      normalized_cache_.data() + n * image + c * plane, hw,
                      &sum_dy, &sum_dy_xhat);
    }
    gamma_.grad[c] += static_cast<float>(sum_dy_xhat);
    beta_.grad[c] += static_cast<float>(sum_dy);

    const float g = gamma_.value[c];
    const float inv_std = batch_inv_std_[static_cast<std::size_t>(c)];
    const float scale = g * inv_std / static_cast<float>(count);
    for (std::int64_t n = 0; n < batch; ++n) {
      const float* dy = grad_output.data() + n * image + c * plane;
      const float* x_hat = normalized_cache_.data() + n * image + c * plane;
      float* dx = grad_input.data() + n * image + c * plane;
      bn_backward_dx(dy, x_hat, dx, hw, scale, static_cast<float>(count),
                     static_cast<float>(sum_dy),
                     static_cast<float>(sum_dy_xhat));
    }
  }
  return grad_input;
}

std::vector<Parameter*> BatchNorm2d::parameters() { return {&gamma_, &beta_}; }

}  // namespace flightnn::nn
