#pragma once

// A trainable parameter: value plus gradient accumulator. Layers own their
// parameters and expose raw pointers to the optimizer; the pointers stay
// valid for the lifetime of the layer.

#include <string>

#include "tensor/tensor.hpp"

namespace flightnn::nn {

struct Parameter {
  tensor::Tensor value;
  tensor::Tensor grad;
  std::string name;           // for debugging / reporting
  bool trainable = true;
  // Weight-decay exemption: biases and batch-norm scales are conventionally
  // excluded from L2 decay.
  bool decay = true;

  Parameter() = default;
  Parameter(tensor::Tensor initial, std::string parameter_name,
            bool apply_decay = true)
      : value(std::move(initial)),
        grad(value.shape()),
        name(std::move(parameter_name)),
        decay(apply_decay) {}

  void zero_grad() { grad.fill(0.0F); }
};

}  // namespace flightnn::nn
