#pragma once

// 2-D convolution (NCHW activations, OIHW weights) via im2col + GEMM, with
// an optional WeightTransform so the same layer runs full-precision,
// fixed-point, LightNN-k or FLightNN weights. The transform sees the weight
// tensor filter-major (axis 0 = output channel = "filter" in the paper).

#include <vector>

#include "nn/layer.hpp"
#include "support/rng.hpp"
#include "tensor/ops.hpp"

namespace flightnn::nn {

class Conv2d final : public Layer {
 public:
  Conv2d(std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel, std::int64_t stride, std::int64_t padding,
         bool with_bias, support::Rng& rng);

  tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;

  // The original naive nested-loop kernels, kept as differential oracles for
  // the GEMM fast path (same pattern as ShiftPlan::run_reference). These run
  // regardless of the global train-kernel path.
  tensor::Tensor forward_reference(const tensor::Tensor& input, bool training);
  tensor::Tensor backward_reference(const tensor::Tensor& grad_output);

  std::vector<Parameter*> parameters() override;
  quant::WeightTransform* weight_transform() override { return transform_.get(); }
  Parameter* quantized_parameter() override { return &weight_; }
  [[nodiscard]] std::string name() const override { return "conv2d"; }

  void set_transform(quant::WeightTransformPtr transform) {
    transform_ = std::move(transform);
  }

  [[nodiscard]] Parameter& weight() { return weight_; }
  [[nodiscard]] Parameter& bias() { return bias_; }
  [[nodiscard]] bool has_bias() const { return has_bias_; }

  [[nodiscard]] std::int64_t in_channels() const { return in_channels_; }
  [[nodiscard]] std::int64_t out_channels() const { return out_channels_; }
  [[nodiscard]] std::int64_t kernel() const { return kernel_; }
  [[nodiscard]] std::int64_t stride() const { return stride_; }
  [[nodiscard]] std::int64_t padding() const { return padding_; }

  // Weights as actually used in the last forward (quantized if a transform
  // is installed). Valid after any forward.
  [[nodiscard]] const tensor::Tensor& effective_weight() const {
    return effective_weight_;
  }

  // Geometry observed by the most recent forward (input/output spatial
  // sizes); used by the hardware cost models to census layers.
  [[nodiscard]] const tensor::ConvGeometry& last_geometry() const {
    return geometry_;
  }

  // Quantize the current weights through the installed transform without
  // running a forward pass (used by export / hardware-model paths).
  [[nodiscard]] tensor::Tensor quantized_weight();

 private:
  // Shared prologue of forward/forward_reference: shape checks, geometry,
  // weight quantization, input caching.
  void prepare_forward(const tensor::Tensor& input, bool training);
  void check_backward(const tensor::Tensor& grad_output) const;
  // Route dL/d(wq) through the transform (or STE) and accumulate bias grads.
  void finish_backward(const tensor::Tensor& grad_output,
                       const tensor::Tensor& grad_wq);

  tensor::Tensor forward_gemm(const tensor::Tensor& input);
  tensor::Tensor forward_naive(const tensor::Tensor& input);
  tensor::Tensor backward_gemm(const tensor::Tensor& grad_output);
  tensor::Tensor backward_naive(const tensor::Tensor& grad_output);

  std::int64_t in_channels_, out_channels_, kernel_, stride_, padding_;
  bool has_bias_;
  Parameter weight_;  // [out, in, k, k]
  Parameter bias_;    // [out]
  quant::WeightTransformPtr transform_;

  // Cached forward state for backward.
  tensor::Tensor input_cache_;
  tensor::Tensor effective_weight_;
  tensor::ConvGeometry geometry_;
};

}  // namespace flightnn::nn
