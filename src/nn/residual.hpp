#pragma once

// Residual block: out = post(main(x) + shortcut(x)), where `main` is the
// conv-bn-act-conv-bn stack, `shortcut` is identity or a strided 1x1
// projection, and `post` is the activation (and optional activation
// quantizer) applied after the addition. Matches the ResNet structures of
// Table 1 (networks 2, 6, 7, 8).

#include "nn/sequential.hpp"

namespace flightnn::nn {

class ResidualBlock final : public Layer {
 public:
  // `shortcut` may be empty (identity skip). `post` must not be empty.
  ResidualBlock(std::unique_ptr<Sequential> main_path,
                std::unique_ptr<Sequential> shortcut,
                std::unique_ptr<Sequential> post);

  tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  [[nodiscard]] std::string name() const override { return "residual_block"; }

  void for_each_child(const std::function<void(Layer&)>& visitor) override;

  [[nodiscard]] Sequential& main_path() { return *main_path_; }
  // nullptr for identity skips.
  [[nodiscard]] Sequential* shortcut() { return shortcut_.get(); }
  [[nodiscard]] Sequential& post() { return *post_; }
  [[nodiscard]] bool has_projection() const { return shortcut_ != nullptr; }

 private:
  std::unique_ptr<Sequential> main_path_;
  std::unique_ptr<Sequential> shortcut_;  // nullptr => identity skip
  std::unique_ptr<Sequential> post_;
};

}  // namespace flightnn::nn
