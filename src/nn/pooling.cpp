#include "nn/pooling.hpp"

#include <limits>

#include "runtime/thread_pool.hpp"
#include "support/check.hpp"

namespace flightnn::nn {

MaxPool2d::MaxPool2d(std::int64_t window, std::int64_t stride)
    : window_(window), stride_(stride == 0 ? window : stride) {
  FLIGHTNN_CHECK(window > 0, "MaxPool2d: window must be > 0, got ", window);
  FLIGHTNN_CHECK(stride >= 0, "MaxPool2d: stride must be >= 0, got ", stride);
}

tensor::Tensor MaxPool2d::forward(const tensor::Tensor& input, bool training) {
  const auto& s = input.shape();
  FLIGHTNN_CHECK(s.rank() == 4, "MaxPool2d: expects NCHW input, got ",
                 s.to_string());
  const std::int64_t batch = s[0], channels = s[1], in_h = s[2], in_w = s[3];
  FLIGHTNN_CHECK(in_h >= window_ && in_w >= window_,
                 "MaxPool2d: window ", window_, " larger than input ",
                 s.to_string());
  const std::int64_t out_h = (in_h - window_) / stride_ + 1;
  const std::int64_t out_w = (in_w - window_) / stride_ + 1;
  input_shape_ = s;
  tensor::Tensor output(tensor::Shape{batch, channels, out_h, out_w});
  if (training) {
    argmax_.assign(static_cast<std::size_t>(output.numel()), 0);
  }
  // Range kernel over (image, channel) planes; every output element (and its
  // argmax slot) is written by exactly one thread. ~2 ns per window element
  // visited; small feature maps stay on the calling thread.
  const std::int64_t out_plane_size = out_h * out_w;
  const runtime::CostHint plane_cost{
      static_cast<double>(out_plane_size * window_ * window_) * 2.0};
  runtime::parallel_for(0, batch * channels, 1, plane_cost,
                        [&](std::int64_t p_begin, std::int64_t p_end) {
    for (std::int64_t p = p_begin; p < p_end; ++p) {
      const float* plane = input.data() + p * in_h * in_w;
      std::int64_t out_idx = p * out_plane_size;
      if (window_ == 2 && stride_ == 2) {
        // The network's only pooling shape. Fully unrolled and branchless:
        // the winning element is data-dependent, so compare-and-branch
        // mispredicts on most outputs. Tournament order matches the naive
        // scan (row 0 before row 1, left before right, first max wins --
        // strict compares keep the earlier element on ties).
        for (std::int64_t oy = 0; oy < out_h; ++oy) {
          const float* r0 = plane + (2 * oy) * in_w;
          const float* r1 = r0 + in_w;
          for (std::int64_t ox = 0; ox < out_w; ++ox, ++out_idx) {
            const float a = r0[2 * ox], b = r0[2 * ox + 1];
            const float c = r1[2 * ox], d = r1[2 * ox + 1];
            const float m01 = std::max(a, b);
            const float m23 = std::max(c, d);
            output[out_idx] = std::max(m01, m23);
            if (training) {
              const std::int64_t i01 = b > a ? 1 : 0;
              const std::int64_t i23 = d > c ? in_w + 1 : in_w;
              const std::int64_t off = m23 > m01 ? i23 : i01;
              argmax_[static_cast<std::size_t>(out_idx)] =
                  p * in_h * in_w + (2 * oy) * in_w + 2 * ox + off;
            }
          }
        }
        continue;
      }
      for (std::int64_t oy = 0; oy < out_h; ++oy) {
        for (std::int64_t ox = 0; ox < out_w; ++ox, ++out_idx) {
          float best = -std::numeric_limits<float>::infinity();
          std::int64_t best_idx = 0;
          for (std::int64_t ky = 0; ky < window_; ++ky) {
            const std::int64_t iy = oy * stride_ + ky;
            for (std::int64_t kx = 0; kx < window_; ++kx) {
              const std::int64_t ix = ox * stride_ + kx;
              const std::int64_t idx = iy * in_w + ix;
              // Conditional moves, not a branch: which window element wins
              // is data-dependent and mispredicts badly. Strict > keeps the
              // first of several equal maxima, matching the naive scan.
              const float v = plane[idx];
              best_idx = v > best ? p * in_h * in_w + idx : best_idx;
              best = std::max(v, best);
            }
          }
          output[out_idx] = best;
          if (training) argmax_[static_cast<std::size_t>(out_idx)] = best_idx;
        }
      }
    }
  });
  return output;
}

tensor::Tensor MaxPool2d::backward(const tensor::Tensor& grad_output) {
  FLIGHTNN_CHECK(!argmax_.empty(),
                 "MaxPool2d::backward before forward(training=true)");
  FLIGHTNN_CHECK(
      grad_output.numel() == static_cast<std::int64_t>(argmax_.size()),
      "MaxPool2d::backward: grad numel ", grad_output.numel(),
      " does not match forward output ", argmax_.size());
  tensor::Tensor grad_input(input_shape_);
  for (std::int64_t i = 0; i < grad_output.numel(); ++i) {
    grad_input[argmax_[static_cast<std::size_t>(i)]] += grad_output[i];
  }
  return grad_input;
}

tensor::Tensor GlobalAvgPool::forward(const tensor::Tensor& input, bool training) {
  const auto& s = input.shape();
  FLIGHTNN_CHECK(s.rank() == 4, "GlobalAvgPool: expects NCHW input, got ",
                 s.to_string());
  if (training) input_shape_ = s;
  else input_shape_ = s;  // cheap; needed for shape-only backward too
  const std::int64_t batch = s[0], channels = s[1], hw = s[2] * s[3];
  tensor::Tensor output(tensor::Shape{batch, channels});
  // One output element per (image, channel) plane, each owned by one thread;
  // the double accumulation order within a plane never changes. ~1 ns per
  // summed element.
  const runtime::CostHint plane_cost{static_cast<double>(hw)};
  runtime::parallel_for(0, batch * channels, 1, plane_cost,
                        [&](std::int64_t p_begin, std::int64_t p_end) {
    for (std::int64_t p = p_begin; p < p_end; ++p) {
      const float* plane = input.data() + p * hw;
      double acc = 0.0;
      for (std::int64_t i = 0; i < hw; ++i) acc += plane[i];
      output[p] = static_cast<float>(acc / static_cast<double>(hw));
    }
  });
  return output;
}

tensor::Tensor GlobalAvgPool::backward(const tensor::Tensor& grad_output) {
  FLIGHTNN_CHECK(input_shape_.rank() == 4,
                 "GlobalAvgPool::backward before forward");
  FLIGHTNN_CHECK_SHAPE(grad_output.shape(),
                       (tensor::Shape{input_shape_[0], input_shape_[1]}),
                       "GlobalAvgPool::backward");
  const std::int64_t batch = input_shape_[0], channels = input_shape_[1];
  const std::int64_t hw = input_shape_[2] * input_shape_[3];
  tensor::Tensor grad_input(input_shape_);
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t c = 0; c < channels; ++c) {
      const float g = grad_output[n * channels + c] / static_cast<float>(hw);
      float* plane = grad_input.data() + (n * channels + c) * hw;
      for (std::int64_t i = 0; i < hw; ++i) plane[i] = g;
    }
  }
  return grad_input;
}

tensor::Tensor Flatten::forward(const tensor::Tensor& input, bool /*training*/) {
  const auto& s = input.shape();
  FLIGHTNN_CHECK(s.rank() >= 2, "Flatten: expected rank >= 2, got ",
                 s.to_string());
  input_shape_ = s;
  std::int64_t features = 1;
  for (std::size_t axis = 1; axis < s.rank(); ++axis) features *= s[axis];
  return input.reshaped(tensor::Shape{s[0], features});
}

tensor::Tensor Flatten::backward(const tensor::Tensor& grad_output) {
  FLIGHTNN_CHECK(input_shape_.rank() >= 2, "Flatten::backward before forward");
  return grad_output.reshaped(input_shape_);
}

}  // namespace flightnn::nn
