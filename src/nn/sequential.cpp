#include "nn/sequential.hpp"

#include <stdexcept>

namespace flightnn::nn {

Layer* Sequential::add(LayerPtr layer) {
  Layer* raw = layer.get();
  layers_.push_back(std::move(layer));
  return raw;
}

tensor::Tensor Sequential::forward(const tensor::Tensor& input, bool training) {
  tensor::Tensor current = input;
  for (auto& layer : layers_) {
    current = layer->forward(current, training);
  }
  return current;
}

tensor::Tensor Sequential::backward(const tensor::Tensor& grad_output) {
  tensor::Tensor current = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    current = (*it)->backward(current);
  }
  return current;
}

std::vector<Parameter*> Sequential::parameters() {
  std::vector<Parameter*> params;
  for (auto& layer : layers_) {
    auto sub = layer->parameters();
    params.insert(params.end(), sub.begin(), sub.end());
  }
  return params;
}

std::vector<quant::WeightTransform*> Sequential::transforms() {
  return collect_transforms(*this);
}

void Sequential::visit(const std::function<void(Layer&)>& visitor) {
  visit_layers(*this, visitor);
}

}  // namespace flightnn::nn
