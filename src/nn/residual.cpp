#include "nn/residual.hpp"

#include <stdexcept>

namespace flightnn::nn {

ResidualBlock::ResidualBlock(std::unique_ptr<Sequential> main_path,
                             std::unique_ptr<Sequential> shortcut,
                             std::unique_ptr<Sequential> post)
    : main_path_(std::move(main_path)),
      shortcut_(std::move(shortcut)),
      post_(std::move(post)) {
  if (!main_path_ || !post_) {
    throw std::invalid_argument("ResidualBlock: main path and post required");
  }
}

tensor::Tensor ResidualBlock::forward(const tensor::Tensor& input, bool training) {
  tensor::Tensor main_out = main_path_->forward(input, training);
  tensor::Tensor skip_out =
      shortcut_ ? shortcut_->forward(input, training) : input;
  main_out += skip_out;
  return post_->forward(main_out, training);
}

tensor::Tensor ResidualBlock::backward(const tensor::Tensor& grad_output) {
  // Gradient of the sum flows unchanged into both branches.
  tensor::Tensor grad_sum = post_->backward(grad_output);
  tensor::Tensor grad_input = main_path_->backward(grad_sum);
  if (shortcut_) {
    grad_input += shortcut_->backward(grad_sum);
  } else {
    grad_input += grad_sum;
  }
  return grad_input;
}

std::vector<Parameter*> ResidualBlock::parameters() {
  std::vector<Parameter*> params = main_path_->parameters();
  if (shortcut_) {
    auto sub = shortcut_->parameters();
    params.insert(params.end(), sub.begin(), sub.end());
  }
  auto post_params = post_->parameters();
  params.insert(params.end(), post_params.begin(), post_params.end());
  return params;
}

void ResidualBlock::for_each_child(const std::function<void(Layer&)>& visitor) {
  visitor(*main_path_);
  if (shortcut_) visitor(*shortcut_);
  visitor(*post_);
}

}  // namespace flightnn::nn
