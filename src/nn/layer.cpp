#include "nn/layer.hpp"

namespace flightnn::nn {

namespace {
TrainKernelPath g_train_kernel_path = TrainKernelPath::kGemm;
}  // namespace

void set_train_kernel_path(TrainKernelPath path) {
  g_train_kernel_path = path;
}

TrainKernelPath train_kernel_path() { return g_train_kernel_path; }

void visit_layers(Layer& root, const std::function<void(Layer&)>& visitor) {
  visitor(root);
  root.for_each_child([&](Layer& child) { visit_layers(child, visitor); });
}

std::vector<quant::WeightTransform*> collect_transforms(Layer& root) {
  std::vector<quant::WeightTransform*> transforms;
  visit_layers(root, [&](Layer& layer) {
    if (auto* transform = layer.weight_transform()) transforms.push_back(transform);
  });
  return transforms;
}

}  // namespace flightnn::nn
