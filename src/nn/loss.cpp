#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace flightnn::nn {

float SoftmaxCrossEntropy::forward(const tensor::Tensor& logits,
                                   const std::vector<int>& labels) {
  const auto& s = logits.shape();
  if (s.rank() != 2) throw std::invalid_argument("SoftmaxCrossEntropy: rank != 2");
  const std::int64_t batch = s[0], classes = s[1];
  if (static_cast<std::int64_t>(labels.size()) != batch) {
    throw std::invalid_argument("SoftmaxCrossEntropy: label count mismatch");
  }

  probs_ = tensor::Tensor(s);
  labels_ = labels;
  double loss = 0.0;
  for (std::int64_t n = 0; n < batch; ++n) {
    const float* row = logits.data() + n * classes;
    float* p = probs_.data() + n * classes;
    const float row_max = *std::max_element(row, row + classes);
    double denom = 0.0;
    for (std::int64_t c = 0; c < classes; ++c) {
      p[c] = std::exp(row[c] - row_max);
      denom += p[c];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (std::int64_t c = 0; c < classes; ++c) p[c] *= inv;
    const int y = labels[static_cast<std::size_t>(n)];
    if (y < 0 || y >= classes) {
      throw std::invalid_argument("SoftmaxCrossEntropy: label out of range");
    }
    loss -= std::log(std::max(static_cast<double>(p[y]), 1e-12));
  }
  return static_cast<float>(loss / static_cast<double>(batch));
}

tensor::Tensor SoftmaxCrossEntropy::backward() const {
  if (probs_.empty()) throw std::logic_error("SoftmaxCrossEntropy: backward before forward");
  const std::int64_t batch = probs_.shape()[0], classes = probs_.shape()[1];
  tensor::Tensor grad = probs_;
  const float inv_batch = 1.0F / static_cast<float>(batch);
  for (std::int64_t n = 0; n < batch; ++n) {
    grad[n * classes + labels_[static_cast<std::size_t>(n)]] -= 1.0F;
  }
  grad *= inv_batch;
  return grad;
}

double top_k_accuracy(const tensor::Tensor& logits, const std::vector<int>& labels,
                      int k) {
  const auto& s = logits.shape();
  if (s.rank() != 2) throw std::invalid_argument("top_k_accuracy: rank != 2");
  const std::int64_t batch = s[0], classes = s[1];
  if (static_cast<std::int64_t>(labels.size()) != batch || k < 1) {
    throw std::invalid_argument("top_k_accuracy: bad arguments");
  }
  std::int64_t hits = 0;
  for (std::int64_t n = 0; n < batch; ++n) {
    const float* row = logits.data() + n * classes;
    const float target = row[labels[static_cast<std::size_t>(n)]];
    // Count entries strictly greater than the target logit; the label is in
    // the top-k iff fewer than k entries beat it.
    int beaten_by = 0;
    for (std::int64_t c = 0; c < classes; ++c) {
      if (row[c] > target) ++beaten_by;
    }
    if (beaten_by < k) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(batch);
}

}  // namespace flightnn::nn
