#include "nn/activations.hpp"

#include <cmath>

#include "quant/fixedpoint.hpp"
#include "support/check.hpp"

namespace flightnn::nn {

tensor::Tensor LeakyReLU::forward(const tensor::Tensor& input, bool training) {
  if (training) input_cache_ = input;
  tensor::Tensor output(input.shape());
  for (std::int64_t i = 0; i < input.numel(); ++i) {
    const float v = input[i];
    output[i] = v > 0.0F ? v : negative_slope_ * v;
  }
  return output;
}

tensor::Tensor LeakyReLU::backward(const tensor::Tensor& grad_output) {
  FLIGHTNN_CHECK(!input_cache_.empty(),
                 "LeakyReLU::backward before forward(training=true)");
  FLIGHTNN_CHECK_SHAPE(grad_output.shape(), input_cache_.shape(),
                       "LeakyReLU::backward");
  tensor::Tensor grad_input(grad_output.shape());
  for (std::int64_t i = 0; i < grad_output.numel(); ++i) {
    grad_input[i] =
        grad_output[i] * (input_cache_[i] > 0.0F ? 1.0F : negative_slope_);
  }
  return grad_input;
}

ActivationQuant::ActivationQuant(int bits) : bits_(bits) {
  FLIGHTNN_CHECK(bits >= 2 && bits <= 16, "ActivationQuant: bits ", bits,
                 " outside [2, 16]");
}

tensor::Tensor ActivationQuant::forward(const tensor::Tensor& input,
                                        bool training) {
  const quant::FixedPointConfig config{bits_};
  last_scale_ = quant::choose_pow2_scale(input, config);
  if (training) input_cache_ = input;
  return quant::quantize_fixed_point(input, last_scale_, config);
}

tensor::Tensor ActivationQuant::backward(const tensor::Tensor& grad_output) {
  FLIGHTNN_CHECK(!input_cache_.empty(),
                 "ActivationQuant::backward before forward(training=true)");
  FLIGHTNN_CHECK_SHAPE(grad_output.shape(), input_cache_.shape(),
                       "ActivationQuant::backward");
  const quant::FixedPointConfig config{bits_};
  const float limit = last_scale_ * static_cast<float>(config.q_max());
  tensor::Tensor grad_input(grad_output.shape());
  for (std::int64_t i = 0; i < grad_output.numel(); ++i) {
    const bool saturated = std::fabs(input_cache_[i]) > limit;
    grad_input[i] = saturated ? 0.0F : grad_output[i];
  }
  return grad_input;
}

}  // namespace flightnn::nn
