#include "nn/activations.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>

#include "quant/fixedpoint.hpp"
#include "runtime/thread_pool.hpp"
#include "support/check.hpp"
#include "support/simd.hpp"

namespace flightnn::nn {

namespace {

// Rough per-element cost of the pointwise loops below, for the pool's
// serial-fallback gate.
constexpr double kPointwiseNs = 1.0;

// Round-to-nearest-even without the libm nearbyint call (the default
// -march baseline has no SSE4.1 roundps, so std::nearbyint does not
// inline). The magic-constant trick is exact for |v| < 2^22; anything at
// or above that magnitude is already an integer in float. Written as a
// select, not an early return, so the surrounding loops stay branchless
// and vectorizable.
inline float round_half_even(float v) {
  constexpr float kMagic = 12582912.0F;  // 1.5 * 2^23
  const float rounded = (v + kMagic) - kMagic;
  return std::fabs(v) >= 4194304.0F ? v : rounded;  // 2^22: integral already
}

// Branchless pointwise kernels. Activation signs are data-dependent and
// close to 50/50 after batch norm, so a compare-and-branch formulation
// mispredicts on nearly every element (~15 cycles each); these kernels
// compile to max/min/blend with no flow control in the loop body.

// Valid for any negative_slope < 1 (see the dispatch in forward):
// max(v, slope*v) picks v when v > 0 and slope*v otherwise.
FLIGHTNN_SIMD_CLONES
void leaky_forward_train(const float* in, float* out, std::uint8_t* mask,
                         std::int64_t n, float slope) {
  for (std::int64_t i = 0; i < n; ++i) {
    const float v = in[i];
    out[i] = std::max(v, v * slope);
    mask[i] = static_cast<std::uint8_t>(v > 0.0F);
  }
}

FLIGHTNN_SIMD_CLONES
void leaky_forward_eval(const float* in, float* out, std::int64_t n,
                        float slope) {
  for (std::int64_t i = 0; i < n; ++i) {
    const float v = in[i];
    out[i] = std::max(v, v * slope);
  }
}

FLIGHTNN_SIMD_CLONES
void leaky_backward(const float* gout, const std::uint8_t* mask, float* gin,
                    std::int64_t n, float slope) {
  // Two-entry table indexed by the 0/1 mask: a load instead of a
  // mispredicted branch, and exact (multiplying by 1.0F is the identity).
  const float factor[2] = {slope, 1.0F};
  for (std::int64_t i = 0; i < n; ++i) {
    gin[i] = gout[i] * factor[mask[i]];
  }
}

FLIGHTNN_SIMD_CLONES
void quant_forward_train(const float* in, float* out, std::uint8_t* mask,
                         std::int64_t n, float scale, float inv_scale,
                         float q_max, float limit) {
  for (std::int64_t i = 0; i < n; ++i) {
    const float v = in[i];
    float q = round_half_even(v * inv_scale);
    q = std::min(std::max(q, -q_max), q_max);
    out[i] = q * scale;
    mask[i] = static_cast<std::uint8_t>(std::fabs(v) > limit);
  }
}

FLIGHTNN_SIMD_CLONES
void quant_forward_eval(const float* in, float* out, std::int64_t n,
                        float scale, float inv_scale, float q_max) {
  for (std::int64_t i = 0; i < n; ++i) {
    float q = round_half_even(in[i] * inv_scale);
    q = std::min(std::max(q, -q_max), q_max);
    out[i] = q * scale;
  }
}

FLIGHTNN_SIMD_CLONES
void quant_backward(const float* gout, const std::uint8_t* mask, float* gin,
                    std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    // mask is 0 or 1: (mask - 1) is all-ones (pass through) or all-zeros
    // (saturated, gradient exactly +0.0F) -- a bitwise select.
    const std::uint32_t keep = static_cast<std::uint32_t>(mask[i]) - 1U;
    gin[i] = std::bit_cast<float>(std::bit_cast<std::uint32_t>(gout[i]) & keep);
  }
}

}  // namespace

tensor::Tensor LeakyReLU::forward(const tensor::Tensor& input, bool training) {
  FLIGHTNN_CHECK(negative_slope_ < 1.0F,
                 "LeakyReLU: negative_slope must be < 1, got ",
                 negative_slope_);
  tensor::Tensor output = tensor::Tensor::uninitialized(input.shape());
  const float* in = input.data();
  float* out = output.data();
  const float slope = negative_slope_;
  if (training) {
    cached_shape_ = input.shape();
    positive_mask_.resize(static_cast<std::size_t>(input.numel()));
    std::uint8_t* mask = positive_mask_.data();
    runtime::parallel_for(
        0, input.numel(), 4096, runtime::CostHint{kPointwiseNs},
        [&](std::int64_t begin, std::int64_t end) {
          leaky_forward_train(in + begin, out + begin, mask + begin,
                              end - begin, slope);
        });
  } else {
    runtime::parallel_for(
        0, input.numel(), 4096, runtime::CostHint{kPointwiseNs},
        [&](std::int64_t begin, std::int64_t end) {
          leaky_forward_eval(in + begin, out + begin, end - begin, slope);
        });
  }
  return output;
}

tensor::Tensor LeakyReLU::backward(const tensor::Tensor& grad_output) {
  FLIGHTNN_CHECK(!positive_mask_.empty(),
                 "LeakyReLU::backward before forward(training=true)");
  FLIGHTNN_CHECK_SHAPE(grad_output.shape(), cached_shape_,
                       "LeakyReLU::backward");
  tensor::Tensor grad_input =
      tensor::Tensor::uninitialized(grad_output.shape());
  const float* gout = grad_output.data();
  const std::uint8_t* mask = positive_mask_.data();
  float* gin = grad_input.data();
  const float slope = negative_slope_;
  runtime::parallel_for(
      0, grad_output.numel(), 4096, runtime::CostHint{kPointwiseNs},
      [&](std::int64_t begin, std::int64_t end) {
        leaky_backward(gout + begin, mask + begin, gin + begin, end - begin,
                       slope);
      });
  return grad_input;
}

ActivationQuant::ActivationQuant(int bits) : bits_(bits) {
  FLIGHTNN_CHECK(bits >= 2 && bits <= 16, "ActivationQuant: bits ", bits,
                 " outside [2, 16]");
}

tensor::Tensor ActivationQuant::forward(const tensor::Tensor& input,
                                        bool training) {
  const quant::FixedPointConfig config{bits_};
  last_scale_ = quant::choose_pow2_scale(input, config);
  const float scale = last_scale_;
  const float inv_scale = 1.0F / scale;  // exact: scale is a power of two
  const float q_max = static_cast<float>(config.q_max());
  const float limit = scale * q_max;
  tensor::Tensor output = tensor::Tensor::uninitialized(input.shape());
  const float* in = input.data();
  float* out = output.data();
  if (training) {
    cached_shape_ = input.shape();
    saturated_mask_.resize(static_cast<std::size_t>(input.numel()));
    std::uint8_t* mask = saturated_mask_.data();
    runtime::parallel_for(
        0, input.numel(), 4096, runtime::CostHint{kPointwiseNs},
        [&](std::int64_t begin, std::int64_t end) {
          quant_forward_train(in + begin, out + begin, mask + begin,
                              end - begin, scale, inv_scale, q_max, limit);
        });
  } else {
    runtime::parallel_for(
        0, input.numel(), 4096, runtime::CostHint{kPointwiseNs},
        [&](std::int64_t begin, std::int64_t end) {
          quant_forward_eval(in + begin, out + begin, end - begin, scale,
                             inv_scale, q_max);
        });
  }
  return output;
}

tensor::Tensor ActivationQuant::backward(const tensor::Tensor& grad_output) {
  FLIGHTNN_CHECK(!saturated_mask_.empty(),
                 "ActivationQuant::backward before forward(training=true)");
  FLIGHTNN_CHECK_SHAPE(grad_output.shape(), cached_shape_,
                       "ActivationQuant::backward");
  tensor::Tensor grad_input =
      tensor::Tensor::uninitialized(grad_output.shape());
  const float* gout = grad_output.data();
  const std::uint8_t* mask = saturated_mask_.data();
  float* gin = grad_input.data();
  runtime::parallel_for(
      0, grad_output.numel(), 4096, runtime::CostHint{kPointwiseNs},
      [&](std::int64_t begin, std::int64_t end) {
        quant_backward(gout + begin, mask + begin, gin + begin, end - begin);
      });
  return grad_input;
}

}  // namespace flightnn::nn
