#pragma once

// Spatial pooling layers: 2x2-style max pooling (VGG downsampling) and
// global average pooling (ResNet head), plus Flatten to bridge NCHW
// activations into the Linear classifier.

#include "nn/layer.hpp"

namespace flightnn::nn {

class MaxPool2d final : public Layer {
 public:
  explicit MaxPool2d(std::int64_t window, std::int64_t stride = 0);

  tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "maxpool2d"; }

  [[nodiscard]] std::int64_t window() const { return window_; }
  [[nodiscard]] std::int64_t stride() const { return stride_; }

 private:
  std::int64_t window_, stride_;
  tensor::Shape input_shape_;
  std::vector<std::int64_t> argmax_;  // flat input index per output element
};

class GlobalAvgPool final : public Layer {
 public:
  tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "global_avg_pool"; }

 private:
  tensor::Shape input_shape_;
};

class Flatten final : public Layer {
 public:
  tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "flatten"; }

 private:
  tensor::Shape input_shape_;
};

}  // namespace flightnn::nn
