#pragma once

// Helpers that install weight transforms across every quantizable layer of a
// model, producing the paper's model variants from one float architecture:
// Full (no transform), FP_4W (fixed point), L-1 / L-2 (LightNN), and
// FLightNN (per-filter flexible k). Each layer gets its own transform
// instance so FLightNN thresholds are per-layer trainables.

#include <vector>

#include "core/flightnn_transform.hpp"
#include "nn/sequential.hpp"
#include "quant/fixedpoint.hpp"
#include "quant/lightnn.hpp"

namespace flightnn::core {

// Remove all transforms (back to full precision).
void install_full_precision(nn::Sequential& model);

// LightNN-k on every conv/linear layer.
void install_lightnn(nn::Sequential& model, int k, quant::Pow2Config config = {});

// Fixed-point weights on every conv/linear layer.
void install_fixed_point(nn::Sequential& model, int bits);

// FLightNN on every conv/linear layer; returns the per-layer transforms
// (non-owning; the layers own them) so callers can read thresholds / k.
std::vector<FLightNNTransform*> install_flightnn(nn::Sequential& model,
                                                 const FLightNNConfig& config);

// Per-layer view of a quantizable layer: its transform (may be null) and its
// weight parameter. Used by the hardware models and storage accounting.
struct QuantizableLayer {
  nn::Layer* layer = nullptr;
  quant::WeightTransform* transform = nullptr;
  nn::Parameter* weight = nullptr;
};

std::vector<QuantizableLayer> quantizable_layers(nn::Sequential& model);

}  // namespace flightnn::core
