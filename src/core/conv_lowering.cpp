#include "core/conv_lowering.hpp"

#include <algorithm>
#include <cstring>

#include "support/check.hpp"
#include "support/simd.hpp"

namespace flightnn::core {

namespace {

// Contiguous accumulate span of the stride-1 col2im path; multiversioned so
// the AVX2 clone processes eight floats per add.
FLIGHTNN_SIMD_CLONES
void add_span(const float* in, float* out, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) out[i] += in[i];
}

// Stride-1 row copy with padding clamp: fill out_row[0, out_w) from
// in_row[ix0, ix0 + out_w) where out-of-range source positions are zero.
inline void copy_row_stride1(const float* in_row, std::int64_t in_w,
                             std::int64_t ix0, float* out_row,
                             std::int64_t out_w) {
  const std::int64_t lo = std::max<std::int64_t>(0, -ix0);
  const std::int64_t hi = std::min(out_w, in_w - ix0);
  if (lo > 0) {
    std::memset(out_row, 0, static_cast<std::size_t>(lo) * sizeof(float));
  }
  if (hi > lo) {
    std::memcpy(out_row + lo, in_row + ix0 + lo,
                static_cast<std::size_t>(hi - lo) * sizeof(float));
  }
  if (out_w > hi) {
    const std::int64_t n = out_w - std::max(hi, lo);
    std::memset(out_row + std::max(hi, lo), 0,
                static_cast<std::size_t>(n) * sizeof(float));
  }
}

}  // namespace

void im2col_strided(const float* image, const tensor::ConvGeometry& geom,
                    float* columns, std::int64_t row_stride) {
  const std::int64_t out_h = geom.out_h();
  const std::int64_t out_w = geom.out_w();
  FLIGHTNN_DCHECK(row_stride >= out_h * out_w,
                  "im2col_strided: row_stride ", row_stride,
                  " < out_hw ", out_h * out_w);
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < geom.in_channels; ++c) {
    const float* plane = image + c * geom.in_h * geom.in_w;
    for (std::int64_t ky = 0; ky < geom.kernel; ++ky) {
      for (std::int64_t kx = 0; kx < geom.kernel; ++kx, ++row) {
        float* out_base = columns + row * row_stride;
        for (std::int64_t oy = 0; oy < out_h; ++oy) {
          float* out_row = out_base + oy * out_w;
          const std::int64_t iy = oy * geom.stride + ky - geom.padding;
          if (iy < 0 || iy >= geom.in_h) {
            std::memset(out_row, 0,
                        static_cast<std::size_t>(out_w) * sizeof(float));
            continue;
          }
          const float* in_row = plane + iy * geom.in_w;
          if (geom.stride == 1) {
            copy_row_stride1(in_row, geom.in_w, kx - geom.padding, out_row,
                             out_w);
          } else {
            for (std::int64_t ox = 0; ox < out_w; ++ox) {
              const std::int64_t ix = ox * geom.stride + kx - geom.padding;
              out_row[ox] = (ix >= 0 && ix < geom.in_w) ? in_row[ix] : 0.0F;
            }
          }
        }
      }
    }
  }
}

void col2im_strided(const float* columns, std::int64_t row_stride,
                    const tensor::ConvGeometry& geom, float* image) {
  const std::int64_t out_h = geom.out_h();
  const std::int64_t out_w = geom.out_w();
  FLIGHTNN_DCHECK(row_stride >= out_h * out_w,
                  "col2im_strided: row_stride ", row_stride,
                  " < out_hw ", out_h * out_w);
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < geom.in_channels; ++c) {
    float* plane = image + c * geom.in_h * geom.in_w;
    for (std::int64_t ky = 0; ky < geom.kernel; ++ky) {
      for (std::int64_t kx = 0; kx < geom.kernel; ++kx, ++row) {
        const float* in_base = columns + row * row_stride;
        for (std::int64_t oy = 0; oy < out_h; ++oy) {
          const float* in_row = in_base + oy * out_w;
          const std::int64_t iy = oy * geom.stride + ky - geom.padding;
          if (iy < 0 || iy >= geom.in_h) continue;
          float* out_row = plane + iy * geom.in_w;
          if (geom.stride == 1) {
            const std::int64_t ix0 = kx - geom.padding;
            const std::int64_t lo = std::max<std::int64_t>(0, -ix0);
            const std::int64_t hi = std::min(out_w, geom.in_w - ix0);
            if (hi > lo) add_span(in_row + lo, out_row + ix0 + lo, hi - lo);
          } else {
            for (std::int64_t ox = 0; ox < out_w; ++ox) {
              const std::int64_t ix = ox * geom.stride + kx - geom.padding;
              if (ix >= 0 && ix < geom.in_w) out_row[ix] += in_row[ox];
            }
          }
        }
      }
    }
  }
}

}  // namespace flightnn::core
