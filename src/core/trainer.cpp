#include "core/trainer.hpp"

#include <cmath>

#include "support/logging.hpp"

namespace flightnn::core {

Trainer::Trainer(nn::Sequential& model, TrainConfig config)
    : model_(model),
      config_(config),
      rng_(config.seed),
      adam_(model.parameters(), config.learning_rate, 0.9F, 0.999F, 1e-8F,
            config.weight_decay) {}

float Trainer::scheduled_learning_rate(int epoch) const {
  switch (config_.schedule) {
    case LrSchedule::kConstant:
      return config_.learning_rate;
    case LrSchedule::kStepDecay:
      return config_.learning_rate *
             std::pow(config_.lr_decay, static_cast<float>(epoch));
    case LrSchedule::kCosine: {
      if (config_.epochs <= 1) return config_.learning_rate;
      const float progress =
          static_cast<float>(epoch) / static_cast<float>(config_.epochs - 1);
      const float cosine = 0.5F * (1.0F + std::cos(progress * static_cast<float>(M_PI)));
      return config_.lr_min + (config_.learning_rate - config_.lr_min) * cosine;
    }
  }
  return config_.learning_rate;
}

void Trainer::clip_gradients() {
  if (config_.grad_clip_norm <= 0.0F) return;
  double norm_sq = 0.0;
  for (auto* param : adam_.parameters()) {
    for (std::int64_t i = 0; i < param->grad.numel(); ++i) {
      norm_sq += static_cast<double>(param->grad[i]) * param->grad[i];
    }
  }
  const double norm = std::sqrt(norm_sq);
  if (norm <= config_.grad_clip_norm) return;
  const float scale = config_.grad_clip_norm / static_cast<float>(norm);
  for (auto* param : adam_.parameters()) {
    param->grad *= scale;
  }
}

double Trainer::apply_regularization() {
  double reg = 0.0;
  model_.visit([&](nn::Layer& layer) {
    auto* transform = layer.weight_transform();
    auto* param = layer.quantized_parameter();
    if (transform != nullptr && param != nullptr) {
      reg += transform->regularization(param->value, &param->grad);
    }
  });
  return reg;
}

EpochStats Trainer::train_epoch(const data::Dataset& train) {
  data::BatchIterator batches(train, config_.batch_size, rng_, /*shuffle=*/true);
  tensor::Tensor images;
  std::vector<int> labels;

  double loss_sum = 0.0, reg_sum = 0.0, acc_sum = 0.0;
  std::int64_t batch_count = 0;

  while (batches.next(images, labels)) {
    adam_.zero_grad();
    for (auto* transform : model_.transforms()) transform->zero_internal_grads();

    // Steps 1-2 of Algorithm 1: the quantize-then-forward happens inside the
    // layers (each quantizable layer runs its transform on its weights).
    tensor::Tensor logits = model_.forward(images, /*training=*/true);
    const float ce = loss_.forward(logits, labels);
    // Step 3: backward through the network (STE routes dL/dwq to w and the
    // FLightNN transforms accumulate threshold gradients), then add the
    // regularization loss and its gradient on the full-precision weights.
    model_.backward(loss_.backward());
    const double reg = apply_regularization();
    clip_gradients();

    // Step 4: parameter and threshold updates.
    adam_.step();
    for (auto* transform : model_.transforms()) {
      transform->step_internal(config_.threshold_learning_rate);
    }

    loss_sum += ce;
    reg_sum += reg;
    acc_sum += nn::top_k_accuracy(logits, labels, 1);
    ++batch_count;
  }

  EpochStats stats;
  if (batch_count > 0) {
    stats.mean_loss = static_cast<float>(loss_sum / static_cast<double>(batch_count));
    stats.mean_reg_loss =
        static_cast<float>(reg_sum / static_cast<double>(batch_count));
    stats.train_accuracy = acc_sum / static_cast<double>(batch_count);
  }
  return stats;
}

double Trainer::evaluate(const data::Dataset& dataset, int top_k,
                         std::int64_t batch_size) {
  support::Rng eval_rng(0);  // unused when shuffle is off
  data::BatchIterator batches(dataset, batch_size, eval_rng, /*shuffle=*/false);
  tensor::Tensor images;
  std::vector<int> labels;
  double hits = 0.0;
  std::int64_t total = 0;
  while (batches.next(images, labels)) {
    tensor::Tensor logits = model_.forward(images, /*training=*/false);
    const auto n = static_cast<std::int64_t>(labels.size());
    hits += nn::top_k_accuracy(logits, labels, top_k) * static_cast<double>(n);
    total += n;
  }
  return total > 0 ? hits / static_cast<double>(total) : 0.0;
}

FitResult Trainer::fit(const data::Dataset& train, const data::Dataset& test,
                       int top_k) {
  FitResult result;
  double best_train_accuracy = -1.0;
  int epochs_without_improvement = 0;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    adam_.set_learning_rate(scheduled_learning_rate(epoch));
    EpochStats stats = train_epoch(train);
    result.epochs.push_back(stats);
    if (config_.verbose) {
      support::log_info() << "epoch " << (epoch + 1) << "/" << config_.epochs
                          << " loss=" << stats.mean_loss
                          << " reg=" << stats.mean_reg_loss
                          << " train_acc=" << stats.train_accuracy
                          << " lr=" << adam_.learning_rate();
    }
    if (config_.early_stop_patience > 0) {
      if (stats.train_accuracy > best_train_accuracy + 1e-9) {
        best_train_accuracy = stats.train_accuracy;
        epochs_without_improvement = 0;
      } else if (++epochs_without_improvement >= config_.early_stop_patience) {
        result.stopped_early = true;
        break;
      }
    }
  }
  result.test_accuracy = evaluate(test, top_k);
  return result;
}

}  // namespace flightnn::core
