#include "core/decompose.hpp"

#include <cmath>

#include "support/check.hpp"

namespace flightnn::core {

tensor::Tensor Decomposition::reconstruct(const tensor::Shape& shape) const {
  tensor::Tensor out(shape);
  for (const auto& term : terms) {
    float* base = out.data() + term.filter * elements_per_filter;
    for (std::int64_t e = 0; e < elements_per_filter; ++e) {
      base[e] += term.elements[static_cast<std::size_t>(e)].value();
    }
  }
  return out;
}

Decomposition decompose_to_lightnn1(const tensor::Tensor& quantized_weights,
                                    int k_max, const quant::Pow2Config& config) {
  FLIGHTNN_CHECK(k_max >= 1, "decompose_to_lightnn1: k_max must be >= 1, got ",
                 k_max);
  const auto& shape = quantized_weights.shape();
  FLIGHTNN_CHECK(shape.rank() >= 1 && shape[0] > 0,
                 "decompose_to_lightnn1: filter-major tensor required, got ",
                 shape.to_string());
  const std::int64_t filters = shape[0];
  const std::int64_t per_filter = quantized_weights.numel() / filters;

  Decomposition result;
  result.elements_per_filter = per_filter;
  result.filter_k.assign(static_cast<std::size_t>(filters), 0);

  // Peel each filter level by level: level j takes the nearest power of two
  // of each element's remaining residual. A filter is done when all residuals
  // are zero; a non-zero residual after k_max levels means the input was not
  // a valid LightNN-k / FLightNN quantization.
  std::vector<float> residual(static_cast<std::size_t>(per_filter));
  for (std::int64_t i = 0; i < filters; ++i) {
    const float* filter = quantized_weights.data() + i * per_filter;
    for (std::int64_t e = 0; e < per_filter; ++e) {
      residual[static_cast<std::size_t>(e)] = filter[e];
    }
    for (int level = 0; level < k_max; ++level) {
      bool any_nonzero = false;
      for (float v : residual) {
        if (v != 0.0F) {
          any_nonzero = true;
          break;
        }
      }
      if (!any_nonzero) break;

      Pow2FilterTerm term;
      term.filter = i;
      term.level = level;
      term.elements.resize(static_cast<std::size_t>(per_filter));
      for (std::int64_t e = 0; e < per_filter; ++e) {
        auto& v = residual[static_cast<std::size_t>(e)];
        const quant::Pow2Term p = quant::round_to_pow2(v, config);
        term.elements[static_cast<std::size_t>(e)] = p;
        v -= p.value();
      }
      result.terms.push_back(std::move(term));
      ++result.filter_k[static_cast<std::size_t>(i)];
    }
    for (float v : residual) {
      FLIGHTNN_CHECK(v == 0.0F, "decompose_to_lightnn1: filter ", i,
                     " is not a sum of <= ", k_max, " powers of two");
    }
    FLIGHTNN_DCHECK(result.filter_k[static_cast<std::size_t>(i)] <= k_max,
                    "decompose_to_lightnn1: filter ", i, " produced ",
                    result.filter_k[static_cast<std::size_t>(i)],
                    " terms, k_max ", k_max);
  }
  return result;
}

}  // namespace flightnn::core
