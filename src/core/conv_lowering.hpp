#pragma once

// Patch-matrix lowering for the GEMM training fast path (DESIGN.md §10).
//
// These are the fast-path counterparts of tensor::im2col / tensor::col2im.
// Two differences justify the separate entry points:
//
//   1. A `row_stride` parameter decouples the patch-row pitch from one
//      image's out_h*out_w, so several images can be lowered side by side
//      into one [patch_size, group*out_hw] matrix. Conv2d then runs a
//      single blocked GEMM over the whole group instead of one small GEMM
//      per image, which is where the batched fast path gets its
//      throughput (the per-image GEMMs of the Table-1 networks are too
//      small to reach the core's peak).
//   2. A stride-1 specialization (every conv in the Table-1 networks)
//      turns the inner gather into memcpy of contiguous spans plus edge
//      zeroing, instead of a bounds check per element.
//
// The naive tensor:: versions stay untouched: they are the differential
// oracles the fast path is tested against, so they must keep the seed's
// exact behavior. Both lowerings are pure per-element moves -- no
// accumulation across threads -- so using them inside parallel loops keeps
// the training step bit-identical at any thread count.

#include <cstdint>

#include "tensor/ops.hpp"

namespace flightnn::core {

// Scatter one image [C, in_h, in_w] into patch-matrix rows: element
// (p, j) of the logical [patch_size, out_hw] block lands at
// columns[p * row_stride + j]. `columns` points at the block's (0, 0);
// callers lowering a group of images pass the same base plus an out_hw
// column offset per image. Requires row_stride >= out_h*out_w.
void im2col_strided(const float* image, const tensor::ConvGeometry& geom,
                    float* columns, std::int64_t row_stride);

// Adjoint of im2col_strided: accumulate patch-matrix rows back into the
// image (`image` must be zero-initialized or hold a partial sum).
void col2im_strided(const float* columns, std::int64_t row_stride,
                    const tensor::ConvGeometry& geom, float* image);

}  // namespace flightnn::core
