#include "core/flightnn_transform.hpp"

#include <algorithm>
#include <cmath>

#include "runtime/thread_pool.hpp"
#include "support/check.hpp"

namespace flightnn::core {

namespace {

// Filters are reduced in fixed-size blocks: each block's partial sum is
// computed entirely by whichever thread owns it, then the partials are
// combined serially in block order. The block size depends only on this
// constant -- never on the thread count -- so regularizer losses and
// threshold gradients are bit-identical at any thread count.
constexpr std::int64_t kFilterBlock = 16;

double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

// d/dx sigmoid(x / T) evaluated at x, including the 1/T factor.
double sigmoid_prime(double x, double temperature) {
  const double s = sigmoid(x / temperature);
  return s * (1.0 - s) / temperature;
}

std::int64_t filter_count(const tensor::Tensor& w, bool per_layer) {
  FLIGHTNN_CHECK(w.shape().rank() >= 1 && w.shape()[0] > 0,
                 "FLightNNTransform: weights must be filter-major, got ",
                 w.shape().to_string());
  return per_layer ? 1 : w.shape()[0];
}

}  // namespace

FLightNNTransform::FLightNNTransform(FLightNNConfig config)
    : config_(std::move(config)),
      thresholds_(static_cast<std::size_t>(config_.k_max), config_.threshold_init),
      threshold_grads_(static_cast<std::size_t>(config_.k_max), 0.0F),
      threshold_adam_(static_cast<std::size_t>(config_.k_max)) {
  FLIGHTNN_CHECK(config_.k_max >= 1, "FLightNNConfig: k_max must be >= 1, got ",
                 config_.k_max);
  FLIGHTNN_CHECK(config_.temperature > 0.0F,
                 "FLightNNConfig: temperature must be > 0, got ",
                 config_.temperature);
  FLIGHTNN_CHECK(config_.pow2.e_min <= config_.pow2.e_max,
                 "FLightNNConfig: e_min ", config_.pow2.e_min, " > e_max ",
                 config_.pow2.e_max);
  if (config_.lambdas.empty()) config_.lambdas = {0.0F};
  // Extend lambdas to k_max levels by repeating the last coefficient.
  while (static_cast<int>(config_.lambdas.size()) < config_.k_max) {
    config_.lambdas.push_back(config_.lambdas.back());
  }
}

int FLightNNTransform::quantize_filter(const float* filter, std::int64_t count,
                                       float* out, FilterTrace* trace) const {
  // One learned threshold per quantization level (Sec. 4.1): if these fall
  // out of step, the early-exit comparison below reads garbage.
  FLIGHTNN_DCHECK(
      static_cast<int>(thresholds_.size()) == config_.k_max,
      "FLightNNTransform: ", thresholds_.size(), " thresholds for k_max ",
      config_.k_max);
  int k = 0;
  std::vector<float> residual(filter, filter + count);
  if (out != nullptr) {
    for (std::int64_t e = 0; e < count; ++e) out[e] = 0.0F;
  }
  for (int j = 0; j < config_.k_max; ++j) {
    double norm_sq = 0.0;
    for (std::int64_t e = 0; e < count; ++e) {
      norm_sq += static_cast<double>(residual[static_cast<std::size_t>(e)]) *
                 residual[static_cast<std::size_t>(e)];
    }
    const double norm = std::sqrt(norm_sq);
    if (norm <= thresholds_[static_cast<std::size_t>(j)]) break;  // Fig. 2 early exit

    if (trace != nullptr) {
      // Backward needs the full per-level history: residual snapshot, the
      // rounded terms, and the residual norm.
      std::vector<float> rounded(static_cast<std::size_t>(count));
      for (std::int64_t e = 0; e < count; ++e) {
        rounded[static_cast<std::size_t>(e)] =
            quant::round_to_pow2(residual[static_cast<std::size_t>(e)],
                                 config_.pow2)
                .value();
      }
      if (out != nullptr) {
        for (std::int64_t e = 0; e < count; ++e) {
          out[e] += rounded[static_cast<std::size_t>(e)];
        }
      }
      trace->residuals.push_back(residual);
      trace->norms.push_back(norm);
      for (std::int64_t e = 0; e < count; ++e) {
        residual[static_cast<std::size_t>(e)] -=
            rounded[static_cast<std::size_t>(e)];
      }
      trace->rounded.push_back(std::move(rounded));
    } else {
      // Forward-only: fuse round / accumulate / peel in one pass, no
      // per-level history copies.
      for (std::int64_t e = 0; e < count; ++e) {
        const float term =
            quant::round_to_pow2(residual[static_cast<std::size_t>(e)],
                                 config_.pow2)
                .value();
        if (out != nullptr) out[e] += term;
        residual[static_cast<std::size_t>(e)] -= term;
      }
    }
    ++k;
  }
  if (trace != nullptr) trace->k = k;
  // A filter may fire at most k_max levels, and the per-level histories must
  // stay in lockstep with the fired-level count.
  FLIGHTNN_DCHECK(k <= config_.k_max, "FLightNNTransform: filter fired ", k,
                  " levels, k_max ", config_.k_max);
  FLIGHTNN_DCHECK(
      trace == nullptr ||
          (trace->residuals.size() == static_cast<std::size_t>(k) &&
           trace->norms.size() == static_cast<std::size_t>(k) &&
           trace->rounded.size() == static_cast<std::size_t>(k)),
      "FLightNNTransform: trace vectors out of step with k=", k);
  return k;
}

tensor::Tensor FLightNNTransform::forward(const tensor::Tensor& w) {
  const std::int64_t filters = filter_count(w, config_.per_layer);
  const std::int64_t per_filter = w.numel() / filters;
  tensor::Tensor out(w.shape());
  std::vector<double> level0_norms(static_cast<std::size_t>(filters));
  // Each filter owns its output slice and norm entry outright, so the
  // partition is irrelevant to the result.
  const double filter_ns = static_cast<double>(per_filter) *
                           static_cast<double>(config_.k_max) * 15.0;
  runtime::parallel_for(
      0, filters, 1, runtime::CostHint{filter_ns},
      [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) {
          const float* filter = w.data() + i * per_filter;
          double norm_sq = 0.0;
          for (std::int64_t e = 0; e < per_filter; ++e) {
            norm_sq += static_cast<double>(filter[e]) * filter[e];
          }
          level0_norms[static_cast<std::size_t>(i)] = std::sqrt(norm_sq);
          quantize_filter(filter, per_filter, out.data() + i * per_filter,
                          nullptr);
        }
      });
  // Refresh the keep-alive cap: t_0 may prune at most max_prune_fraction of
  // the filters, i.e. it must stay below that quantile of the norms.
  if (config_.max_prune_fraction < 1.0F && filters > 0) {
    std::sort(level0_norms.begin(), level0_norms.end());
    const auto index = static_cast<std::size_t>(
        static_cast<double>(filters - 1) * config_.max_prune_fraction);
    level0_cap_ = static_cast<float>(level0_norms[index]);
  }
  return out;
}

void FLightNNTransform::backward(const tensor::Tensor& w,
                                 const tensor::Tensor& grad_wq,
                                 tensor::Tensor& grad_w) {
  FLIGHTNN_CHECK_SHAPE(grad_wq.shape(), w.shape(), "FLightNNTransform::backward");
  // Straight-through for the weights themselves.
  grad_w += grad_wq;

  // Threshold gradients: for each filter and each threshold level j, run the
  // recursion of Sec. 4.2 with STE on R(.) and hard indicator values
  // (g_l = 1 on fired levels):
  //   dr_j     = 0
  //   dg_l     = sigma'(||r_l|| - t_l) * ((r_l / ||r_l||) . dr_l - [l == j])
  //   dQ/dt_j += dg_l * R(r_l) + dr_l          (accumulated over levels l)
  //   dr_{l+1} = -dg_l * R(r_l)                 (since g_l = 1)
  const std::int64_t filters = filter_count(w, config_.per_layer);
  const std::int64_t per_filter = w.numel() / filters;
  const double temperature = config_.temperature;
  const auto k_max = static_cast<std::size_t>(config_.k_max);

  // Per-block double partials for the threshold gradients (see kFilterBlock).
  const std::int64_t blocks = (filters + kFilterBlock - 1) / kFilterBlock;
  std::vector<double> partials(static_cast<std::size_t>(blocks) * k_max, 0.0);
  const double block_ns = static_cast<double>(kFilterBlock) *
                          static_cast<double>(per_filter) *
                          static_cast<double>(config_.k_max) *
                          static_cast<double>(config_.k_max) * 10.0;
  runtime::parallel_for(
      0, blocks, 1, runtime::CostHint{block_ns},
      [&](std::int64_t blk_begin, std::int64_t blk_end) {
        for (std::int64_t blk = blk_begin; blk < blk_end; ++blk) {
          double* block_grads = partials.data() +
                                static_cast<std::size_t>(blk) * k_max;
          const std::int64_t i_end =
              std::min(filters, (blk + 1) * kFilterBlock);
          for (std::int64_t i = blk * kFilterBlock; i < i_end; ++i) {
            FilterTrace trace;
            quantize_filter(w.data() + i * per_filter, per_filter, nullptr,
                            &trace);
            if (trace.k == 0) continue;
            const float* grad_filter = grad_wq.data() + i * per_filter;

            for (int j = 0; j < trace.k; ++j) {
              // dr: derivative of the level-l residual w.r.t. t_j; zero until
              // l = j.
              std::vector<double> dr(static_cast<std::size_t>(per_filter), 0.0);
              double grad_tj = 0.0;
              for (int l = j; l < trace.k; ++l) {
                const auto& r = trace.residuals[static_cast<std::size_t>(l)];
                const auto& rr = trace.rounded[static_cast<std::size_t>(l)];
                const double norm = trace.norms[static_cast<std::size_t>(l)];
                // (r_l / ||r_l||) . dr_l
                double dnorm = 0.0;
                if (norm > 0.0) {
                  for (std::int64_t e = 0; e < per_filter; ++e) {
                    dnorm += static_cast<double>(r[static_cast<std::size_t>(e)]) *
                             dr[static_cast<std::size_t>(e)];
                  }
                  dnorm /= norm;
                }
                const double sp = sigmoid_prime(
                    norm - thresholds_[static_cast<std::size_t>(l)], temperature);
                const double dg = sp * (dnorm - (l == j ? 1.0 : 0.0));
                // Accumulate (dL/dwq) . (dQ/dt_j) for this level and update dr.
                for (std::int64_t e = 0; e < per_filter; ++e) {
                  const double dq = dg * rr[static_cast<std::size_t>(e)] +
                                    dr[static_cast<std::size_t>(e)];
                  grad_tj += static_cast<double>(grad_filter[e]) * dq;
                  dr[static_cast<std::size_t>(e)] =
                      -dg * rr[static_cast<std::size_t>(e)];
                }
              }
              block_grads[j] += grad_tj;
            }
          }
        }
      });
  // Serial combine in block order: the only cross-thread reduction, and its
  // order is fixed by the block index.
  for (std::int64_t blk = 0; blk < blocks; ++blk) {
    for (std::size_t j = 0; j < k_max; ++j) {
      threshold_grads_[j] += static_cast<float>(
          partials[static_cast<std::size_t>(blk) * k_max + j]);
    }
  }
}

double FLightNNTransform::regularization(const tensor::Tensor& w,
                                         tensor::Tensor* grad_w) {
  // L_reg = sum_j lambda_j sum_i ||r_{i,j}||_2 over the *defined* residual
  // levels (r_{i,0} = w_i always; deeper residuals only exist for levels the
  // filter actually reached). Gradient treats the quantized part of each
  // residual as locally constant (R(.) is piecewise constant), so
  // d||r_{i,j}||/dw_i = r_{i,j} / ||r_{i,j}||.
  const std::int64_t filters = filter_count(w, config_.per_layer);
  const std::int64_t per_filter = w.numel() / filters;
  // Gradient slices are filter-private; the loss reduces through per-block
  // double partials combined serially in block order (see kFilterBlock).
  const std::int64_t blocks = (filters + kFilterBlock - 1) / kFilterBlock;
  std::vector<double> partials(static_cast<std::size_t>(blocks), 0.0);
  const double block_ns = static_cast<double>(kFilterBlock) *
                          static_cast<double>(per_filter) *
                          static_cast<double>(config_.k_max) * 15.0;
  runtime::parallel_for(
      0, blocks, 1, runtime::CostHint{block_ns},
      [&](std::int64_t blk_begin, std::int64_t blk_end) {
        for (std::int64_t blk = blk_begin; blk < blk_end; ++blk) {
          double block_loss = 0.0;
          const std::int64_t i_end =
              std::min(filters, (blk + 1) * kFilterBlock);
          for (std::int64_t i = blk * kFilterBlock; i < i_end; ++i) {
            const float* filter = w.data() + i * per_filter;
            std::vector<float> residual(filter, filter + per_filter);
            for (int j = 0; j < config_.k_max; ++j) {
              double norm_sq = 0.0;
              for (float v : residual) norm_sq += static_cast<double>(v) * v;
              const double norm = std::sqrt(norm_sq);
              const double lambda =
                  config_.lambdas[static_cast<std::size_t>(j)];
              block_loss += lambda * norm;
              if (grad_w != nullptr && norm > 0.0) {
                float* g = grad_w->data() + i * per_filter;
                const double scale = lambda / norm;
                for (std::int64_t e = 0; e < per_filter; ++e) {
                  g[e] += static_cast<float>(
                      scale * residual[static_cast<std::size_t>(e)]);
                }
              }
              // Peel to the next residual level regardless of the threshold:
              // the regularizer shapes residuals even for levels that did not
              // fire, which is what pulls ||r_{i,j}|| below t_j over training.
              for (std::int64_t e = 0; e < per_filter; ++e) {
                auto& v = residual[static_cast<std::size_t>(e)];
                v -= quant::round_to_pow2(v, config_.pow2).value();
              }
            }
          }
          partials[static_cast<std::size_t>(blk)] = block_loss;
        }
      });
  double loss = 0.0;
  for (std::int64_t blk = 0; blk < blocks; ++blk) {
    loss += partials[static_cast<std::size_t>(blk)];
  }
  return loss;
}

void FLightNNTransform::step_internal(float learning_rate) {
  threshold_adam_.step(thresholds_, threshold_grads_, learning_rate);
  // Negative thresholds are equivalent to 0 for the early-exit comparison
  // (norms are non-negative) but would make the sigmoid relaxation drift;
  // keep them in the meaningful range.
  for (float& t : thresholds_) {
    if (t < 0.0F) t = 0.0F;
  }
  // Keep-alive guard on whole-filter pruning (see FLightNNConfig).
  if (!thresholds_.empty() && thresholds_[0] > level0_cap_) {
    thresholds_[0] = level0_cap_;
  }
  zero_internal_grads();
}

void FLightNNTransform::zero_internal_grads() {
  std::fill(threshold_grads_.begin(), threshold_grads_.end(), 0.0F);
}

std::string FLightNNTransform::describe() const {
  return "flightnn[kmax=" + std::to_string(config_.k_max) + "]";
}

std::vector<int> FLightNNTransform::filter_k(const tensor::Tensor& w) const {
  const std::int64_t filters = filter_count(w, config_.per_layer);
  const std::int64_t per_filter = w.numel() / filters;
  std::vector<int> ks(static_cast<std::size_t>(filters));
  for (std::int64_t i = 0; i < filters; ++i) {
    ks[static_cast<std::size_t>(i)] =
        quantize_filter(w.data() + i * per_filter, per_filter, nullptr,
                        nullptr);
  }
  return ks;
}

double FLightNNTransform::mean_k(const tensor::Tensor& w) const {
  const auto ks = filter_k(w);
  double sum = 0.0;
  for (int k : ks) sum += k;
  return ks.empty() ? 0.0 : sum / static_cast<double>(ks.size());
}

void FLightNNTransform::set_thresholds(std::vector<float> thresholds) {
  FLIGHTNN_CHECK(static_cast<int>(thresholds.size()) == config_.k_max,
                 "set_thresholds: expected ", config_.k_max, " values, got ",
                 thresholds.size());
  thresholds_ = std::move(thresholds);
}

}  // namespace flightnn::core
