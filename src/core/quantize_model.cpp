#include "core/quantize_model.hpp"

#include "nn/conv2d.hpp"
#include "nn/linear.hpp"

namespace flightnn::core {

namespace {

// Apply a transform-factory to every conv/linear layer in the tree.
template <typename MakeTransform>
void install(nn::Sequential& model, MakeTransform make) {
  model.visit([&](nn::Layer& layer) {
    if (auto* conv = dynamic_cast<nn::Conv2d*>(&layer)) {
      conv->set_transform(make());
    } else if (auto* linear = dynamic_cast<nn::Linear*>(&layer)) {
      linear->set_transform(make());
    }
  });
}

}  // namespace

void install_full_precision(nn::Sequential& model) {
  install(model, [] { return quant::WeightTransformPtr(); });
}

void install_lightnn(nn::Sequential& model, int k, quant::Pow2Config config) {
  install(model, [&] {
    return std::make_shared<quant::LightNNTransform>(k, config);
  });
}

void install_fixed_point(nn::Sequential& model, int bits) {
  install(model, [&] {
    return std::make_shared<quant::FixedPointTransform>(
        quant::FixedPointConfig{bits});
  });
}

std::vector<FLightNNTransform*> install_flightnn(nn::Sequential& model,
                                                 const FLightNNConfig& config) {
  std::vector<FLightNNTransform*> transforms;
  install(model, [&] {
    auto transform = std::make_shared<FLightNNTransform>(config);
    transforms.push_back(transform.get());
    return transform;
  });
  return transforms;
}

std::vector<QuantizableLayer> quantizable_layers(nn::Sequential& model) {
  std::vector<QuantizableLayer> layers;
  model.visit([&](nn::Layer& layer) {
    if (auto* param = layer.quantized_parameter()) {
      layers.push_back(QuantizableLayer{&layer, layer.weight_transform(), param});
    }
  });
  return layers;
}

}  // namespace flightnn::core
