#pragma once

// FLightNN weight quantization (Sec. 4): per-filter flexible k driven by
// trainable per-level thresholds.
//
//   Q_k(w_i | t) = sum_{j=0}^{k-1} 1(||r_{i,j}||_2 > t_j) R(r_{i,j}),
//   r_{i,0} = w_i,  r_{i,j+1} = r_{i,j} - R(r_{i,j})   (while levels fire)
//
// following the early-exit flow of Fig. 2: the first level whose residual
// norm falls below its threshold stops the expansion, and the number of
// levels that fired is the filter's k_i (k_i = 0 means the filter is pruned
// to zero).
//
// Gradients (Sec. 4.2): straight-through for weights and for R(.); the
// indicator is relaxed to a sigmoid when differentiating w.r.t. thresholds,
// and the recursion of the paper's threshold-gradient formula is evaluated
// exactly (all chain terms, not just the leading one).
//
// Regularization (Sec. 4.3): L_reg = sum_j lambda_j sum_i ||r_{i,j}||_2,
// a sum of group-lasso terms; the j = 0 term is lambda_0 sum_i ||w_i||_2
// (whole-filter pruning) and j > 0 terms shrink residuals so levels fall
// under their thresholds (reducing k_i).

#include <limits>
#include <vector>

#include "optim/optimizer.hpp"
#include "quant/pow2.hpp"
#include "quant/transform.hpp"

namespace flightnn::core {

struct FLightNNConfig {
  // Maximum number of shift terms per filter (paper: 2).
  int k_max = 2;
  // Power-of-two term encoding shared with the LightNN baselines.
  quant::Pow2Config pow2;
  // Group-lasso coefficients, one per level; resized to k_max with the last
  // value repeated if shorter. Paper's Fig. 4 example: {1e-5, 3e-5}.
  std::vector<float> lambdas = {1e-5F, 3e-5F};
  // Initial threshold value per level (paper initializes t to 0, which makes
  // every filter start at k_i = k_max: gradual quantization).
  float threshold_init = 0.0F;
  // Temperature of the sigmoid relaxation: sigma((||r|| - t) / temperature).
  // Smaller values sharpen the relaxation; 1.0 matches the paper's notation.
  float temperature = 1.0F;
  // Ablation knob: treat the whole weight tensor as a single group instead
  // of one group per filter (per-layer k instead of the paper's per-filter
  // k). Exercised by bench/ablation_granularity.
  bool per_layer = false;
  // Keep-alive guard: cap the level-0 threshold so that at most this
  // fraction of the layer's filters is pruned. At the paper's training
  // scale t_0 converges before it can prune a whole layer; at this
  // reproduction's compressed schedules an unlucky threshold random walk
  // can kill a layer (zero output => zero gradient => no recovery), so the
  // guard bounds t_0 by the corresponding quantile of the filter norms seen
  // in the most recent forward. Set to 1.0 to disable.
  float max_prune_fraction = 0.25F;
};

class FLightNNTransform final : public quant::WeightTransform {
 public:
  explicit FLightNNTransform(FLightNNConfig config = {});

  // --- WeightTransform interface -----------------------------------------
  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& w) override;
  void backward(const tensor::Tensor& w, const tensor::Tensor& grad_wq,
                tensor::Tensor& grad_w) override;
  double regularization(const tensor::Tensor& w, tensor::Tensor* grad_w) override;
  void step_internal(float learning_rate) override;
  void zero_internal_grads() override;
  [[nodiscard]] std::string describe() const override;

  // --- FLightNN-specific API ----------------------------------------------
  // Number of shift terms each filter uses under the current thresholds.
  [[nodiscard]] std::vector<int> filter_k(const tensor::Tensor& w) const;

  // Mean k over filters (the per-layer "cost" used by the hardware models).
  [[nodiscard]] double mean_k(const tensor::Tensor& w) const;

  [[nodiscard]] const std::vector<float>& thresholds() const { return thresholds_; }
  void set_thresholds(std::vector<float> thresholds);
  [[nodiscard]] const std::vector<float>& threshold_grads() const {
    return threshold_grads_;
  }

  [[nodiscard]] const FLightNNConfig& config() const { return config_; }

 private:
  // Residual trace of one filter's quantization: everything backward and
  // the reporting helpers need.
  struct FilterTrace {
    std::vector<std::vector<float>> residuals;      // r_{i,j} per fired level
    std::vector<std::vector<float>> rounded;        // R(r_{i,j}) per fired level
    std::vector<double> norms;                      // ||r_{i,j}||_2 per fired level
    int k = 0;                                      // number of fired levels
  };

  // Quantize one filter. Writes the quantized values to `out` if non-null,
  // records the per-level residual history into `trace` if non-null (only
  // backward needs it -- the history copies are not free), and returns the
  // number of fired levels.
  int quantize_filter(const float* filter, std::int64_t count, float* out,
                      FilterTrace* trace) const;

  FLightNNConfig config_;
  std::vector<float> thresholds_;
  std::vector<float> threshold_grads_;
  optim::ScalarAdam threshold_adam_;
  // Keep-alive cap on t_0, refreshed by forward() from the filter norms
  // (+infinity until the first forward or when the guard is disabled).
  float level0_cap_ = std::numeric_limits<float>::infinity();
};

}  // namespace flightnn::core
