#pragma once

// Fig. 3 of the paper: a convolution with a k_i > 1 filter is equivalent to
// k_i convolutions with k_i = 1 (single power-of-two) filters whose outputs
// are summed. This module performs that decomposition on quantized weight
// tensors so any FLightNN can run on a LightNN-1 (single-shift) engine with
// an extra feature-map summation per layer -- which is exactly how the
// integer inference engine in inference/ consumes it.

#include <vector>

#include "quant/pow2.hpp"
#include "tensor/tensor.hpp"

namespace flightnn::core {

// One single-shift filter extracted from a multi-shift filter.
struct Pow2FilterTerm {
  std::int64_t filter = 0;  // index of the original filter (output channel)
  int level = 0;            // which shift term of that filter (0-based)
  // Per-element power-of-two terms; sign == 0 marks a zero element.
  std::vector<quant::Pow2Term> elements;
};

struct Decomposition {
  // All single-shift terms, grouped by original filter in ascending order.
  std::vector<Pow2FilterTerm> terms;
  // k_i per original filter (0 for fully pruned filters, which produce no
  // terms).
  std::vector<int> filter_k;
  std::int64_t elements_per_filter = 0;

  // Total single-shift convolutions the LightNN-1 engine must run.
  [[nodiscard]] std::int64_t term_count() const {
    return static_cast<std::int64_t>(terms.size());
  }

  // Reassemble the float weight tensor (for equivalence checks).
  [[nodiscard]] tensor::Tensor reconstruct(const tensor::Shape& shape) const;
};

// Decompose a quantized, filter-major weight tensor whose every element is a
// sum of at most `k_max` powers of two (the output of LightNN-k or FLightNN
// quantization). Throws if an element fails to reduce to zero within k_max
// greedy peeling steps, i.e. if the tensor is not actually quantized.
Decomposition decompose_to_lightnn1(const tensor::Tensor& quantized_weights,
                                    int k_max, const quant::Pow2Config& config);

}  // namespace flightnn::core
