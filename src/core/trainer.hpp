#pragma once

// Algorithm 1 of the paper: per-mini-batch (1) quantize weights through the
// installed transforms, (2) forward and total loss L_CE + L_reg,
// (3) backward with STE + relaxed-indicator gradients, (4) Adam update of
// weights/biases and of the thresholds. The trainer is quantizer-agnostic:
// layers without transforms train full-precision, LightNN/fixed-point
// transforms contribute no regularization or internal state, and FLightNN
// transforms contribute both.

#include <vector>

#include "data/dataset.hpp"
#include "nn/loss.hpp"
#include "nn/sequential.hpp"
#include "optim/optimizer.hpp"
#include "support/rng.hpp"

namespace flightnn::core {

enum class LrSchedule {
  kConstant,
  kStepDecay,  // lr *= lr_decay after each epoch
  kCosine,     // cosine anneal from learning_rate to lr_min over all epochs
};

struct TrainConfig {
  int epochs = 10;
  std::int64_t batch_size = 32;
  float learning_rate = 1e-3F;        // Adam, for weights and biases
  float threshold_learning_rate = 1e-3F;  // Adam, for FLightNN thresholds
  float weight_decay = 0.0F;
  LrSchedule schedule = LrSchedule::kStepDecay;
  // Multiplicative learning-rate decay applied after each epoch
  // (kStepDecay only).
  float lr_decay = 1.0F;
  // Floor of the cosine anneal (kCosine only).
  float lr_min = 1e-5F;
  // Clip the global L2 norm of all parameter gradients per step; 0 = off.
  float grad_clip_norm = 0.0F;
  // Stop after this many epochs without train-accuracy improvement;
  // 0 = off.
  int early_stop_patience = 0;
  std::uint64_t seed = 7;
  bool verbose = false;
};

struct EpochStats {
  float mean_loss = 0.0F;       // CE component
  float mean_reg_loss = 0.0F;   // regularization component
  double train_accuracy = 0.0;  // top-1 on training batches (quantized fwd)
};

struct FitResult {
  std::vector<EpochStats> epochs;
  double test_accuracy = 0.0;   // top-1 after the last epoch
  bool stopped_early = false;
};

class Trainer {
 public:
  Trainer(nn::Sequential& model, TrainConfig config);

  // One pass over the training set.
  EpochStats train_epoch(const data::Dataset& train);

  // Top-k accuracy over a dataset with quantized forward (training = false).
  double evaluate(const data::Dataset& dataset, int top_k = 1,
                  std::int64_t batch_size = 64);

  // Full fit: `epochs` passes, then a final test evaluation.
  FitResult fit(const data::Dataset& train, const data::Dataset& test,
                int top_k = 1);

  [[nodiscard]] const TrainConfig& config() const { return config_; }

  // Learning rate the schedule assigns to a given epoch index.
  [[nodiscard]] float scheduled_learning_rate(int epoch) const;

 private:
  // Sum of transform->regularization over all quantizable layers, with
  // gradients accumulated into the layers' weight grads.
  double apply_regularization();

  // Scale all gradients so their global L2 norm is at most grad_clip_norm.
  void clip_gradients();

  nn::Sequential& model_;
  TrainConfig config_;
  support::Rng rng_;
  optim::Adam adam_;
  nn::SoftmaxCrossEntropy loss_;
};

}  // namespace flightnn::core
