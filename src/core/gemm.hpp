#pragma once

// Cache-blocked, thread-parallel GEMM core for the float training path.
//
// Layout follows the classic three-loop blocking scheme (Goto/BLIS): the K
// dimension is cut into KC-deep blocks, B is packed once per block into
// NR-wide column micro-panels, and the M dimension is split into MC-row
// panels that are distributed over runtime::ThreadPool::parallel_for. Each
// task packs its own A panel into MR-row micro-panels (per-thread scratch,
// runtime::Scratch::kGemmPackA) and drives an MR x NR register-tiled
// microkernel over the packed operands. The shared B pack buffer comes from
// the per-thread tensor buffer pool on the caller, so steady-state training
// loops perform no heap allocation here.
//
// The microkernel is selected once at startup: the build stays at the
// portable SSE2 baseline, but a second microkernel compiled with
// __attribute__((target("avx2,fma"))) (6 x 16 tile, FMA accumulation) is
// picked via __builtin_cpu_supports("avx2") when the host has it. Both
// kernels accumulate each C element in the same packed-K order, so the
// dispatch changes throughput, never results-per-kernel -- though AVX2's
// fused multiply-adds round differently from the baseline's mul+add, so
// results are bit-stable per host, not across hosts (same contract as
// -march=native builds; DESIGN.md §10).
//
// Determinism: every C element is accumulated in a fixed order -- KC blocks
// outermost, packed K order inside the microkernel -- and the parallel
// partition only decides *which thread* computes an (M-panel, KC-block)
// pair, never the arithmetic inside it. Results are therefore bit-identical
// to serial execution at any thread count (the property DESIGN.md §8 demands
// of float kernels and DESIGN.md §10 extends to the training path).
//
// The transposed variants gemm_tn / gemm_nt reuse the same packed core; the
// pack routines absorb the transpose by walking the source with swapped
// strides, so there is exactly one microkernel to test and tune.
//
// The naive single-thread kernels these replace live on as differential
// oracles in tensor/ops.hpp (tensor::gemm, tensor::matmul_*).

#include <cstdint>

namespace flightnn::core {

// C[m x n] = A[m x k] * B[k x n], all row-major. Accumulates into C instead
// of overwriting when `accumulate` is set.
void gemm(const float* a, const float* b, float* c, std::int64_t m,
          std::int64_t k, std::int64_t n, bool accumulate = false);

// C[m x n] = A^T * B where a is [k x m] row-major (A^T taken logically).
void gemm_tn(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n, bool accumulate = false);

// C[m x n] = A * B^T where b is [n x k] row-major.
void gemm_nt(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n, bool accumulate = false);

// Fully general strided entry point: a(i, p) = a[i * a_rs + p * a_cs],
// b(p, j) = b[p * b_rs + j * b_cs], C row-major [m x n]. The named wrappers
// above are thin stride bindings over this.
void gemm_strided(const float* a, std::int64_t a_rs, std::int64_t a_cs,
                  const float* b, std::int64_t b_rs, std::int64_t b_cs,
                  float* c, std::int64_t m, std::int64_t k, std::int64_t n,
                  bool accumulate);

}  // namespace flightnn::core
