#include "core/gemm.hpp"

#include <algorithm>
#include <cstring>

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define FLIGHTNN_GEMM_X86_DISPATCH 1
#endif

#include "runtime/scratch_arena.hpp"
#include "runtime/thread_pool.hpp"
#include "support/annotations.hpp"
#include "support/check.hpp"
#include "tensor/buffer_pool.hpp"

namespace flightnn::core {

namespace {

// Blocking parameters. The register tile (mr x nr) is picked at runtime --
// see active_kernel() -- because the portable baseline build carries no
// -march flags: a 4 x 8 scalar tile that the autovectorizer turns into SSE2
// code, or a 6 x 16 AVX2+FMA tile compiled with a per-function target
// attribute and selected via __builtin_cpu_supports, so one binary runs
// everywhere and still uses the wide units where they exist. kKc keeps one
// packed A micro-panel column and one packed B block inside L1/L2; kMc is
// the row count of one parallel task, sized so its packed A panel
// (kMc x kKc floats = 64 KiB) fits alongside the B block in L2.
constexpr std::int64_t kMrScalar = 4;
constexpr std::int64_t kNrScalar = 8;
constexpr std::int64_t kKc = 256;
constexpr std::int64_t kMc = 64;
// Columns per parallel task. Tasks tile C in kMc x kNc blocks so GEMMs with
// few rows (weight gradients: m = out_channels) still expose parallelism
// along N; the A-panel repack this duplicates per column block is ~1/(2*kNc)
// of the tile's FLOPs, i.e. noise. Must stay a multiple of every kernel's
// nr so B panel indices stay aligned to task columns.
constexpr std::int64_t kNc = 64;

// Rough scalar throughput used for the parallel_for cost hint: one
// multiply-add every ~0.1 ns once vectorized. Only the order of magnitude
// matters (it separates microsecond GEMMs from millisecond ones).
constexpr double kNsPerFlop = 0.05;

// Pack the [mc x kc] block of A starting at (m0, p0) into mr-row
// micro-panels: ap[ip][kk][r] = a(m0 + ip*mr + r, p0 + kk), zero-padded in
// r past the edge so the microkernel never branches on partial tiles.
FLIGHTNN_HOT void pack_a(const float* a, std::int64_t a_rs, std::int64_t a_cs,
            std::int64_t m0, std::int64_t mc, std::int64_t p0,
            std::int64_t kc, float* ap, std::int64_t mr_tile) {
  const std::int64_t panels = (mc + mr_tile - 1) / mr_tile;
  for (std::int64_t ip = 0; ip < panels; ++ip) {
    const std::int64_t row0 = m0 + ip * mr_tile;
    const std::int64_t mr = std::min(mr_tile, m0 + mc - row0);
    float* dst = ap + ip * kc * mr_tile;
    for (std::int64_t kk = 0; kk < kc; ++kk) {
      const float* src = a + row0 * a_rs + (p0 + kk) * a_cs;
      std::int64_t r = 0;
      for (; r < mr; ++r) dst[kk * mr_tile + r] = src[r * a_rs];
      for (; r < mr_tile; ++r) dst[kk * mr_tile + r] = 0.0F;
    }
  }
}

// Pack the [kc x n] block of B starting at row p0 into nr-column
// micro-panels: bp[jp][kk][j] = b(p0 + kk, jp*nr + j), zero-padded in j.
FLIGHTNN_HOT void pack_b(const float* b, std::int64_t b_rs, std::int64_t b_cs,
            std::int64_t p0, std::int64_t kc, std::int64_t n, float* bp,
            std::int64_t nr_tile) {
  const std::int64_t panels = (n + nr_tile - 1) / nr_tile;
  for (std::int64_t jp = 0; jp < panels; ++jp) {
    const std::int64_t col0 = jp * nr_tile;
    const std::int64_t nr = std::min(nr_tile, n - col0);
    float* dst = bp + jp * kc * nr_tile;
    if (b_cs == 1 && nr == nr_tile) {
      // Contiguous source rows: straight memcpy per kk.
      for (std::int64_t kk = 0; kk < kc; ++kk) {
        std::memcpy(dst + kk * nr_tile, b + (p0 + kk) * b_rs + col0,
                    static_cast<std::size_t>(nr_tile) * sizeof(float));
      }
      continue;
    }
    for (std::int64_t kk = 0; kk < kc; ++kk) {
      const float* src = b + (p0 + kk) * b_rs + col0 * b_cs;
      std::int64_t j = 0;
      for (; j < nr; ++j) dst[kk * nr_tile + j] = src[j * b_cs];
      for (; j < nr_tile; ++j) dst[kk * nr_tile + j] = 0.0F;
    }
  }
}

// One mr x nr register tile over a packed KC block: fixed-bound loops over
// the full tile (padding made the panels rectangular), partial-edge handling
// deferred to the store. Accumulates into C, so the caller zeroes C rows
// once before the first KC block when not accumulating.
FLIGHTNN_HOT void micro_tile_scalar(const float* ap, const float* bp,
                                    std::int64_t kc,
                       float* c, std::int64_t ldc, std::int64_t mr,
                       std::int64_t nr) {
  float acc[kMrScalar * kNrScalar] = {};
  for (std::int64_t kk = 0; kk < kc; ++kk) {
    const float* a_col = ap + kk * kMrScalar;
    const float* b_row = bp + kk * kNrScalar;
    for (std::int64_t r = 0; r < kMrScalar; ++r) {
      const float a_val = a_col[r];
      for (std::int64_t j = 0; j < kNrScalar; ++j) {
        acc[r * kNrScalar + j] += a_val * b_row[j];
      }
    }
  }
  for (std::int64_t r = 0; r < mr; ++r) {
    float* c_row = c + r * ldc;
    for (std::int64_t j = 0; j < nr; ++j) c_row[j] += acc[r * kNrScalar + j];
  }
}

#ifdef FLIGHTNN_GEMM_X86_DISPATCH

// 6 x 16 AVX2+FMA tile: 12 YMM accumulators, two B vectors and one A
// broadcast live per k step (15 of 16 registers). Compiled with a target
// attribute so the portable build still links it; only ever called after
// __builtin_cpu_supports confirms avx2+fma.
__attribute__((target("avx2,fma"))) FLIGHTNN_HOT void micro_tile_avx2(
    const float* ap, const float* bp, std::int64_t kc, float* c,
    std::int64_t ldc, std::int64_t mr, std::int64_t nr) {
  constexpr std::int64_t kMrTile = 6;
  constexpr std::int64_t kNrTile = 16;
  __m256 acc00 = _mm256_setzero_ps(), acc01 = _mm256_setzero_ps();
  __m256 acc10 = _mm256_setzero_ps(), acc11 = _mm256_setzero_ps();
  __m256 acc20 = _mm256_setzero_ps(), acc21 = _mm256_setzero_ps();
  __m256 acc30 = _mm256_setzero_ps(), acc31 = _mm256_setzero_ps();
  __m256 acc40 = _mm256_setzero_ps(), acc41 = _mm256_setzero_ps();
  __m256 acc50 = _mm256_setzero_ps(), acc51 = _mm256_setzero_ps();
  for (std::int64_t kk = 0; kk < kc; ++kk) {
    const __m256 b0 = _mm256_loadu_ps(bp + kk * kNrTile);
    const __m256 b1 = _mm256_loadu_ps(bp + kk * kNrTile + 8);
    const float* a_col = ap + kk * kMrTile;
    __m256 av = _mm256_set1_ps(a_col[0]);
    acc00 = _mm256_fmadd_ps(av, b0, acc00);
    acc01 = _mm256_fmadd_ps(av, b1, acc01);
    av = _mm256_set1_ps(a_col[1]);
    acc10 = _mm256_fmadd_ps(av, b0, acc10);
    acc11 = _mm256_fmadd_ps(av, b1, acc11);
    av = _mm256_set1_ps(a_col[2]);
    acc20 = _mm256_fmadd_ps(av, b0, acc20);
    acc21 = _mm256_fmadd_ps(av, b1, acc21);
    av = _mm256_set1_ps(a_col[3]);
    acc30 = _mm256_fmadd_ps(av, b0, acc30);
    acc31 = _mm256_fmadd_ps(av, b1, acc31);
    av = _mm256_set1_ps(a_col[4]);
    acc40 = _mm256_fmadd_ps(av, b0, acc40);
    acc41 = _mm256_fmadd_ps(av, b1, acc41);
    av = _mm256_set1_ps(a_col[5]);
    acc50 = _mm256_fmadd_ps(av, b0, acc50);
    acc51 = _mm256_fmadd_ps(av, b1, acc51);
  }
  if (mr == kMrTile && nr == kNrTile) {
    const __m256 rows[kMrTile][2] = {{acc00, acc01}, {acc10, acc11},
                                     {acc20, acc21}, {acc30, acc31},
                                     {acc40, acc41}, {acc50, acc51}};
    for (std::int64_t r = 0; r < kMrTile; ++r) {
      float* c_row = c + r * ldc;
      _mm256_storeu_ps(c_row,
                       _mm256_add_ps(_mm256_loadu_ps(c_row), rows[r][0]));
      _mm256_storeu_ps(c_row + 8,
                       _mm256_add_ps(_mm256_loadu_ps(c_row + 8), rows[r][1]));
    }
    return;
  }
  alignas(32) float acc[kMrTile * kNrTile];
  _mm256_store_ps(acc + 0 * kNrTile, acc00);
  _mm256_store_ps(acc + 0 * kNrTile + 8, acc01);
  _mm256_store_ps(acc + 1 * kNrTile, acc10);
  _mm256_store_ps(acc + 1 * kNrTile + 8, acc11);
  _mm256_store_ps(acc + 2 * kNrTile, acc20);
  _mm256_store_ps(acc + 2 * kNrTile + 8, acc21);
  _mm256_store_ps(acc + 3 * kNrTile, acc30);
  _mm256_store_ps(acc + 3 * kNrTile + 8, acc31);
  _mm256_store_ps(acc + 4 * kNrTile, acc40);
  _mm256_store_ps(acc + 4 * kNrTile + 8, acc41);
  _mm256_store_ps(acc + 5 * kNrTile, acc50);
  _mm256_store_ps(acc + 5 * kNrTile + 8, acc51);
  for (std::int64_t r = 0; r < mr; ++r) {
    float* c_row = c + r * ldc;
    for (std::int64_t j = 0; j < nr; ++j) c_row[j] += acc[r * kNrTile + j];
  }
}

#endif  // FLIGHTNN_GEMM_X86_DISPATCH

using MicroFn = void (*)(const float*, const float*, std::int64_t, float*,
                         std::int64_t, std::int64_t, std::int64_t);

struct Kernel {
  std::int64_t mr;
  std::int64_t nr;
  MicroFn run;
};

// Resolved once per process. The choice affects only the pack layout and
// tile shape, never which element sums what -- each C element's accumulation
// order stays (KC blocks outer, packed K inner), so results remain
// bit-identical across thread counts for whichever kernel is active.
const Kernel& active_kernel() {
  static const Kernel kernel = [] {
#ifdef FLIGHTNN_GEMM_X86_DISPATCH
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
      return Kernel{6, 16, micro_tile_avx2};
    }
#endif
    return Kernel{kMrScalar, kNrScalar, micro_tile_scalar};
  }();
  return kernel;
}

}  // namespace

FLIGHTNN_HOT void gemm_strided(const float* a, std::int64_t a_rs,
                               std::int64_t a_cs, const float* b,
                               std::int64_t b_rs, std::int64_t b_cs, float* c,
                               std::int64_t m, std::int64_t k, std::int64_t n,
                               bool accumulate) {
  FLIGHTNN_DCHECK(m >= 0 && k >= 0 && n >= 0,
                  "gemm: negative dimensions m=", m, " k=", k, " n=", n);
  FLIGHTNN_DCHECK(a != nullptr && b != nullptr && c != nullptr,
                  "gemm: null operand");
  if (m == 0 || n == 0) return;
  if (!accumulate && k == 0) {
    std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
    return;
  }

  const Kernel& kern = active_kernel();
  const std::int64_t mr_tile = kern.mr;
  const std::int64_t nr_tile = kern.nr;
  static_assert(kNc % 16 == 0 && kNc % kNrScalar == 0,
                "task columns must align to B panels");
  const std::int64_t n_panels = (n + nr_tile - 1) / nr_tile;
  const std::int64_t m_tasks = (m + kMc - 1) / kMc;
  const std::int64_t n_tasks = (n + kNc - 1) / kNc;
  // Shared packed-B block, reused across KC blocks. Pool-backed so repeat
  // training steps hit the free list instead of the allocator.
  std::vector<float> bp = tensor::pool::acquire(
      static_cast<std::size_t>(n_panels * nr_tile * std::min(kKc, k)));

  for (std::int64_t p0 = 0; p0 < k; p0 += kKc) {
    const std::int64_t kc = std::min(kKc, k - p0);
    pack_b(b, b_rs, b_cs, p0, kc, n, bp.data(), nr_tile);
    const bool zero_c = (p0 == 0) && !accumulate;
    const double task_ns = 2.0 * static_cast<double>(std::min(kMc, m)) *
                           static_cast<double>(kc) *
                           static_cast<double>(std::min(kNc, n)) * kNsPerFlop;
    // Parallel over kMc x kNc tiles of C: each task owns its C block
    // outright, so the partition never changes any element's accumulation
    // order -- results are bit-identical at every thread count.
    runtime::parallel_for(
        0, m_tasks * n_tasks, 1, runtime::CostHint{task_ns},
        [&](std::int64_t t_begin, std::int64_t t_end) {
          for (std::int64_t t = t_begin; t < t_end; ++t) {
            const std::int64_t m0 = (t / n_tasks) * kMc;
            const std::int64_t mc = std::min(kMc, m - m0);
            const std::int64_t c0 = (t % n_tasks) * kNc;
            const std::int64_t nc = std::min(kNc, n - c0);
            const std::int64_t a_panels = (mc + mr_tile - 1) / mr_tile;
            const std::int64_t b_panel0 = c0 / nr_tile;
            const std::int64_t b_panels = (nc + nr_tile - 1) / nr_tile;
            std::vector<float>& ap = runtime::ScratchArena::current().f32(
                runtime::Scratch::kGemmPackA,
                static_cast<std::size_t>(a_panels * mr_tile * kc));
            pack_a(a, a_rs, a_cs, m0, mc, p0, kc, ap.data(), mr_tile);
            if (zero_c) {
              for (std::int64_t r = 0; r < mc; ++r) {
                std::memset(c + (m0 + r) * n + c0, 0,
                            static_cast<std::size_t>(nc) * sizeof(float));
              }
            }
            for (std::int64_t ip = 0; ip < a_panels; ++ip) {
              const std::int64_t row0 = m0 + ip * mr_tile;
              // Clamp to the task's row range: when kMc is not a multiple
              // of mr the last panel is zero-padded past it, and the rows
              // beyond belong to the next task.
              const std::int64_t mr = std::min(mr_tile, m0 + mc - row0);
              for (std::int64_t jp = 0; jp < b_panels; ++jp) {
                const std::int64_t col0 = (b_panel0 + jp) * nr_tile;
                const std::int64_t nr = std::min(nr_tile, c0 + nc - col0);
                kern.run(ap.data() + ip * kc * mr_tile,
                         bp.data() + (b_panel0 + jp) * kc * nr_tile, kc,
                         c + row0 * n + col0, n, mr, nr);
              }
            }
          }
        });
  }
  tensor::pool::release(std::move(bp));
}

void gemm(const float* a, const float* b, float* c, std::int64_t m,
          std::int64_t k, std::int64_t n, bool accumulate) {
  gemm_strided(a, /*a_rs=*/k, /*a_cs=*/1, b, /*b_rs=*/n, /*b_cs=*/1, c, m, k,
               n, accumulate);
}

void gemm_tn(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n, bool accumulate) {
  // a is [k x m] row-major; A^T(i, p) = a[p * m + i].
  gemm_strided(a, /*a_rs=*/1, /*a_cs=*/m, b, /*b_rs=*/n, /*b_cs=*/1, c, m, k,
               n, accumulate);
}

void gemm_nt(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n, bool accumulate) {
  // b is [n x k] row-major; B^T(p, j) = b[j * k + p].
  gemm_strided(a, /*a_rs=*/k, /*a_cs=*/1, b, /*b_rs=*/1, /*b_cs=*/k, c, m, k,
               n, accumulate);
}

}  // namespace flightnn::core
