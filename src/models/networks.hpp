#pragma once

// Builders for the paper's eight network configurations (Table 1). Channel
// progressions are chosen to match the reported parameter counts:
//
//   ID  Structure  Depth  Width  Params   Dataset (paper)
//   1   VGG        7      64     0.08M    CIFAR-10
//   2   ResNet     18     128    0.7M     CIFAR-10
//   3   VGG        7      512    4.6M     CIFAR-10
//   4   VGG        4      64     0.03M    SVHN
//   5   VGG        4      128    0.1M     SVHN
//   6   ResNet     18     128    0.7M     CIFAR-100
//   7   ResNet     18     256    2.8M     CIFAR-100
//   8   ResNet     10     256    1.8M     ImageNet
//
// Every convolution is followed by batch norm and LeakyReLU (Sec. 5.1);
// quantized variants add an 8-bit activation quantizer after each
// activation. Heads are global-average-pool + linear.

#include <memory>
#include <string>
#include <vector>

#include "nn/sequential.hpp"

namespace flightnn::models {

enum class Structure { kVgg, kResNet };

struct NetworkConfig {
  int id = 0;
  Structure structure = Structure::kVgg;
  int depth = 0;           // number of convolutional layers
  int width = 0;           // widest layer's filter count
  double params_approx_m = 0.0;  // paper-reported parameter count, millions
  std::string paper_dataset;     // which dataset the paper pairs it with
};

// The Table-1 configuration for a network id in [1, 8].
NetworkConfig table1_network(int id);

// All eight configurations in order.
std::vector<NetworkConfig> table1_all();

struct BuildOptions {
  std::int64_t in_channels = 3;
  int classes = 10;
  // Activation quantization bit width; 0 disables (full-precision model).
  int act_bits = 8;
  // Multiplies every channel count (floor 4) so benches can train reduced
  // versions of the real topologies; 1.0 is the paper-faithful size.
  float width_scale = 1.0F;
  float leaky_slope = 0.01F;
  std::uint64_t seed = 1;
};

// Construct the network. The result owns all layers; install quantizers via
// core::install_* afterwards.
std::unique_ptr<nn::Sequential> build_network(const NetworkConfig& config,
                                              const BuildOptions& options);

// Total parameter count of a model (weights + biases + norm parameters).
std::int64_t parameter_count(nn::Sequential& model);

// The per-conv-layer output channel progression used by `build_network`
// (before width scaling); exposed for the hardware models, which cost the
// largest layer of each network (Sec. 5.2).
std::vector<std::int64_t> conv_widths(const NetworkConfig& config);

}  // namespace flightnn::models
