#include "models/networks.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "nn/residual.hpp"

namespace flightnn::models {

namespace {

std::int64_t scale_width(std::int64_t width, float scale) {
  const auto scaled = static_cast<std::int64_t>(
      std::lround(static_cast<double>(width) * scale));
  return std::max<std::int64_t>(4, scaled);
}

void add_conv_bn_act(nn::Sequential& seq, std::int64_t in_ch, std::int64_t out_ch,
                     std::int64_t stride, const BuildOptions& opt,
                     support::Rng& rng) {
  seq.emplace<nn::Conv2d>(in_ch, out_ch, 3, stride, 1, /*with_bias=*/false, rng);
  seq.emplace<nn::BatchNorm2d>(out_ch);
  seq.emplace<nn::LeakyReLU>(opt.leaky_slope);
  if (opt.act_bits > 0) seq.emplace<nn::ActivationQuant>(opt.act_bits);
}

std::unique_ptr<nn::Sequential> build_vgg(const NetworkConfig& config,
                                          const BuildOptions& opt,
                                          support::Rng& rng) {
  auto model = std::make_unique<nn::Sequential>();
  if (opt.act_bits > 0) model->emplace<nn::ActivationQuant>(opt.act_bits);

  const auto widths = conv_widths(config);
  std::int64_t in_ch = opt.in_channels;
  for (std::size_t i = 0; i < widths.size(); ++i) {
    const std::int64_t out_ch = scale_width(widths[i], opt.width_scale);
    add_conv_bn_act(*model, in_ch, out_ch, /*stride=*/1, opt, rng);
    in_ch = out_ch;
    // Downsample after every second conv (and after the first conv for the
    // shallow VGG-4 nets so the head sees a small map).
    const bool pool = (config.depth >= 7) ? (i % 2 == 1) : (i + 1 < widths.size());
    if (pool) model->emplace<nn::MaxPool2d>(2);
  }
  model->emplace<nn::GlobalAvgPool>();
  model->emplace<nn::Linear>(in_ch, opt.classes, /*with_bias=*/true, rng);
  return model;
}

std::unique_ptr<nn::Sequential> make_branch() {
  return std::make_unique<nn::Sequential>();
}

void add_residual_block(nn::Sequential& seq, std::int64_t in_ch,
                        std::int64_t out_ch, std::int64_t stride,
                        const BuildOptions& opt, support::Rng& rng) {
  auto main_path = make_branch();
  main_path->emplace<nn::Conv2d>(in_ch, out_ch, 3, stride, 1, false, rng);
  main_path->emplace<nn::BatchNorm2d>(out_ch);
  main_path->emplace<nn::LeakyReLU>(opt.leaky_slope);
  if (opt.act_bits > 0) main_path->emplace<nn::ActivationQuant>(opt.act_bits);
  main_path->emplace<nn::Conv2d>(out_ch, out_ch, 3, 1, 1, false, rng);
  main_path->emplace<nn::BatchNorm2d>(out_ch);

  std::unique_ptr<nn::Sequential> shortcut;
  if (stride != 1 || in_ch != out_ch) {
    shortcut = make_branch();
    shortcut->emplace<nn::Conv2d>(in_ch, out_ch, 1, stride, 0, false, rng);
    shortcut->emplace<nn::BatchNorm2d>(out_ch);
  }

  auto post = make_branch();
  post->emplace<nn::LeakyReLU>(opt.leaky_slope);
  if (opt.act_bits > 0) post->emplace<nn::ActivationQuant>(opt.act_bits);

  seq.emplace<nn::ResidualBlock>(std::move(main_path), std::move(shortcut),
                                 std::move(post));
}

std::unique_ptr<nn::Sequential> build_resnet(const NetworkConfig& config,
                                             const BuildOptions& opt,
                                             support::Rng& rng) {
  auto model = std::make_unique<nn::Sequential>();
  if (opt.act_bits > 0) model->emplace<nn::ActivationQuant>(opt.act_bits);

  // Stage widths w/8, w/4, w/2, w; ResNet-18 has 2 blocks per stage
  // (1 + 8*2 = 17 convs in the main trunk), ResNet-10 has 1 (1 + 4*2 = 9).
  const int blocks_per_stage = config.depth >= 18 ? 2 : 1;
  const std::int64_t w = config.width;
  const std::int64_t stem = scale_width(w / 8, opt.width_scale);
  add_conv_bn_act(*model, opt.in_channels, stem, 1, opt, rng);

  std::int64_t in_ch = stem;
  const std::int64_t stage_widths[4] = {w / 8, w / 4, w / 2, w};
  for (int stage = 0; stage < 4; ++stage) {
    const std::int64_t out_ch = scale_width(stage_widths[stage], opt.width_scale);
    for (int block = 0; block < blocks_per_stage; ++block) {
      const std::int64_t stride = (stage > 0 && block == 0) ? 2 : 1;
      add_residual_block(*model, in_ch, out_ch, stride, opt, rng);
      in_ch = out_ch;
    }
  }
  model->emplace<nn::GlobalAvgPool>();
  model->emplace<nn::Linear>(in_ch, opt.classes, /*with_bias=*/true, rng);
  return model;
}

}  // namespace

NetworkConfig table1_network(int id) {
  switch (id) {
    case 1: return {1, Structure::kVgg, 7, 64, 0.08, "CIFAR-10"};
    case 2: return {2, Structure::kResNet, 18, 128, 0.7, "CIFAR-10"};
    case 3: return {3, Structure::kVgg, 7, 512, 4.6, "CIFAR-10"};
    case 4: return {4, Structure::kVgg, 4, 64, 0.03, "SVHN"};
    case 5: return {5, Structure::kVgg, 4, 128, 0.1, "SVHN"};
    case 6: return {6, Structure::kResNet, 18, 128, 0.7, "CIFAR-100"};
    case 7: return {7, Structure::kResNet, 18, 256, 2.8, "CIFAR-100"};
    case 8: return {8, Structure::kResNet, 10, 256, 1.8, "ImageNet"};
    default:
      throw std::invalid_argument("table1_network: id must be in [1, 8]");
  }
}

std::vector<NetworkConfig> table1_all() {
  std::vector<NetworkConfig> configs;
  configs.reserve(8);
  for (int id = 1; id <= 8; ++id) configs.push_back(table1_network(id));
  return configs;
}

std::vector<std::int64_t> conv_widths(const NetworkConfig& config) {
  const std::int64_t w = config.width;
  if (config.structure == Structure::kVgg) {
    if (config.depth == 7) {
      return {w / 8, w / 4, w / 4, w / 2, w / 2, w, w};
    }
    if (config.depth == 4) {
      return {w / 4, w / 2, w / 2, w};
    }
    throw std::invalid_argument("conv_widths: unsupported VGG depth");
  }
  // ResNet: stem + per-block conv pairs.
  const int blocks_per_stage = config.depth >= 18 ? 2 : 1;
  std::vector<std::int64_t> widths{w / 8};
  const std::int64_t stage_widths[4] = {w / 8, w / 4, w / 2, w};
  for (const auto sw : stage_widths) {
    for (int b = 0; b < blocks_per_stage; ++b) {
      widths.push_back(sw);
      widths.push_back(sw);
    }
  }
  return widths;
}

std::unique_ptr<nn::Sequential> build_network(const NetworkConfig& config,
                                              const BuildOptions& options) {
  support::Rng rng(options.seed);
  if (config.structure == Structure::kVgg) {
    return build_vgg(config, options, rng);
  }
  return build_resnet(config, options, rng);
}

std::int64_t parameter_count(nn::Sequential& model) {
  std::int64_t count = 0;
  for (auto* param : model.parameters()) count += param->value.numel();
  return count;
}

}  // namespace flightnn::models
