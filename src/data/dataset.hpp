#pragma once

// Synthetic image-classification datasets standing in for CIFAR-10, SVHN,
// CIFAR-100 and ImageNet (see DESIGN.md "Substitutions"). Each class is a
// procedurally generated prototype (mixture of oriented gratings and
// Gaussian blobs); samples are amplitude-jittered, translated, noisy draws
// from their class prototype. Difficulty (noise / jitter levels) is tunable
// so the accuracy gaps between quantizers are visible at small scale.

#include <cstdint>
#include <string>
#include <vector>

#include "support/rng.hpp"
#include "tensor/tensor.hpp"

namespace flightnn::data {

struct DatasetSpec {
  std::string name = "synthetic";
  std::int64_t channels = 3;
  std::int64_t height = 32;
  std::int64_t width = 32;
  int classes = 10;
  std::int64_t train_size = 2000;
  std::int64_t test_size = 500;
  // Standard deviation of additive pixel noise relative to signal amplitude;
  // the main difficulty knob.
  float noise = 0.6F;
  // Maximum random translation in pixels applied to each sample.
  int max_shift = 2;
  std::uint64_t seed = 42;
};

// An in-memory labelled image set. Images are NCHW, float in roughly
// [-1, 1]; labels are class indices.
struct Dataset {
  DatasetSpec spec;
  tensor::Tensor images;    // [N, C, H, W]
  std::vector<int> labels;  // size N

  [[nodiscard]] std::int64_t size() const {
    return static_cast<std::int64_t>(labels.size());
  }

  // Copy one sample's image into a [1, C, H, W] tensor.
  [[nodiscard]] tensor::Tensor image(std::int64_t index) const;
};

struct TrainTest {
  Dataset train;
  Dataset test;
};

// Generate the train/test pair for a spec. Deterministic in spec.seed; the
// test set uses held-out draws from the same class prototypes.
TrainTest make_synthetic(const DatasetSpec& spec);

// Paper-dataset stand-ins. `scale` multiplies the default sample counts so
// benches can trade fidelity for runtime (scale = 1 is the bench default).
DatasetSpec cifar10_like(float scale = 1.0F, std::uint64_t seed = 42);
DatasetSpec svhn_like(float scale = 1.0F, std::uint64_t seed = 43);
DatasetSpec cifar100_like(float scale = 1.0F, std::uint64_t seed = 44);
// ImageNet proxy: 50 classes at 32x32 (the paper's net 8 is a reduced-width
// ResNet-10 precisely because full ImageNet was out of budget for them too).
DatasetSpec imagenet_like(float scale = 1.0F, std::uint64_t seed = 45);

// Mini-batch iterator with per-epoch shuffling.
class BatchIterator {
 public:
  BatchIterator(const Dataset& dataset, std::int64_t batch_size,
                support::Rng& rng, bool shuffle = true);

  // Restart from the beginning (reshuffles when enabled).
  void reset();

  // Fetch the next batch; returns false at end of epoch. The final batch of
  // an epoch may be smaller than batch_size.
  bool next(tensor::Tensor& images, std::vector<int>& labels);

  [[nodiscard]] std::int64_t batches_per_epoch() const;

 private:
  const Dataset& dataset_;
  std::int64_t batch_size_;
  support::Rng& rng_;
  bool shuffle_;
  std::vector<std::size_t> order_;
  std::int64_t cursor_ = 0;
};

}  // namespace flightnn::data
