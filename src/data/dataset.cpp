#include "data/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace flightnn::data {

namespace {

// Class prototype: per channel, a mixture of oriented sinusoidal gratings
// and Gaussian blobs whose parameters are drawn once per class. The
// prototype is what makes classes separable; per-sample noise and shifts are
// what makes the task non-trivial.
struct Prototype {
  // One template image per channel, [C * H * W], amplitude-normalized.
  std::vector<float> pattern;
};

Prototype make_prototype(const DatasetSpec& spec, support::Rng& rng) {
  const std::int64_t h = spec.height, w = spec.width, c = spec.channels;
  Prototype proto;
  proto.pattern.assign(static_cast<std::size_t>(c * h * w), 0.0F);

  const int gratings = 2 + static_cast<int>(rng.uniform_index(3));  // 2..4
  const int blobs = 1 + static_cast<int>(rng.uniform_index(3));     // 1..3

  for (std::int64_t ch = 0; ch < c; ++ch) {
    float* plane = proto.pattern.data() + ch * h * w;
    for (int g = 0; g < gratings; ++g) {
      // Cap grating frequency at ~1.5 cycles per image so the +/- max_shift
      // translation augmentation perturbs rather than destroys the class
      // signature.
      const double freq = rng.uniform(0.4, 1.5) * 2.0 * M_PI /
                          static_cast<double>(std::min(h, w));
      const double theta = rng.uniform(0.0, M_PI);
      const double phase = rng.uniform(0.0, 2.0 * M_PI);
      const double amp = rng.uniform(0.3, 1.0);
      const double cx = std::cos(theta), sx = std::sin(theta);
      for (std::int64_t y = 0; y < h; ++y) {
        for (std::int64_t x = 0; x < w; ++x) {
          const double proj = cx * static_cast<double>(x) + sx * static_cast<double>(y);
          plane[y * w + x] += static_cast<float>(amp * std::sin(freq * proj + phase));
        }
      }
    }
    for (int b = 0; b < blobs; ++b) {
      const double mu_y = rng.uniform(0.2, 0.8) * static_cast<double>(h);
      const double mu_x = rng.uniform(0.2, 0.8) * static_cast<double>(w);
      const double sigma = rng.uniform(0.08, 0.25) * static_cast<double>(std::min(h, w));
      const double amp = rng.uniform(-1.2, 1.2);
      for (std::int64_t y = 0; y < h; ++y) {
        for (std::int64_t x = 0; x < w; ++x) {
          const double dy = (static_cast<double>(y) - mu_y) / sigma;
          const double dx = (static_cast<double>(x) - mu_x) / sigma;
          plane[y * w + x] +=
              static_cast<float>(amp * std::exp(-0.5 * (dx * dx + dy * dy)));
        }
      }
    }
  }

  // Normalize to unit RMS so noise levels are comparable across classes.
  double ss = 0.0;
  for (float v : proto.pattern) ss += static_cast<double>(v) * v;
  const float inv_rms = static_cast<float>(
      1.0 / std::max(std::sqrt(ss / static_cast<double>(proto.pattern.size())), 1e-9));
  for (float& v : proto.pattern) v *= inv_rms;
  return proto;
}

// Render one sample: shifted, amplitude-jittered prototype plus noise.
void render_sample(const DatasetSpec& spec, const Prototype& proto,
                   support::Rng& rng, float* out) {
  const std::int64_t h = spec.height, w = spec.width, c = spec.channels;
  const int shift_range = 2 * spec.max_shift + 1;
  const int dy = spec.max_shift > 0
                     ? static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(
                           shift_range))) - spec.max_shift
                     : 0;
  const int dx = spec.max_shift > 0
                     ? static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(
                           shift_range))) - spec.max_shift
                     : 0;
  const float amp = static_cast<float>(rng.uniform(0.7, 1.3));
  for (std::int64_t ch = 0; ch < c; ++ch) {
    const float* plane = proto.pattern.data() + ch * h * w;
    float* out_plane = out + ch * h * w;
    for (std::int64_t y = 0; y < h; ++y) {
      const std::int64_t sy = std::clamp<std::int64_t>(y + dy, 0, h - 1);
      for (std::int64_t x = 0; x < w; ++x) {
        const std::int64_t sx = std::clamp<std::int64_t>(x + dx, 0, w - 1);
        out_plane[y * w + x] =
            amp * plane[sy * w + sx] +
            spec.noise * static_cast<float>(rng.normal());
      }
    }
  }
}

Dataset generate_split(const DatasetSpec& spec,
                       const std::vector<Prototype>& prototypes,
                       std::int64_t count, support::Rng& rng) {
  Dataset ds;
  ds.spec = spec;
  ds.images = tensor::Tensor(
      tensor::Shape{count, spec.channels, spec.height, spec.width});
  ds.labels.resize(static_cast<std::size_t>(count));
  const std::int64_t image_size = spec.channels * spec.height * spec.width;
  for (std::int64_t n = 0; n < count; ++n) {
    const int label = static_cast<int>(
        rng.uniform_index(static_cast<std::uint64_t>(spec.classes)));
    ds.labels[static_cast<std::size_t>(n)] = label;
    render_sample(spec, prototypes[static_cast<std::size_t>(label)], rng,
                  ds.images.data() + n * image_size);
  }
  return ds;
}

std::int64_t scaled(std::int64_t base, float scale) {
  return std::max<std::int64_t>(1, static_cast<std::int64_t>(
                                       std::lround(static_cast<double>(base) * scale)));
}

}  // namespace

tensor::Tensor Dataset::image(std::int64_t index) const {
  if (index < 0 || index >= size()) {
    throw std::out_of_range("Dataset::image: index out of range");
  }
  const std::int64_t image_size = spec.channels * spec.height * spec.width;
  tensor::Tensor out(tensor::Shape{1, spec.channels, spec.height, spec.width});
  const float* src = images.data() + index * image_size;
  std::copy(src, src + image_size, out.data());
  return out;
}

TrainTest make_synthetic(const DatasetSpec& spec) {
  if (spec.classes < 2 || spec.train_size < 1 || spec.test_size < 1) {
    throw std::invalid_argument("make_synthetic: invalid spec");
  }
  support::Rng rng(spec.seed);
  std::vector<Prototype> prototypes;
  prototypes.reserve(static_cast<std::size_t>(spec.classes));
  for (int c = 0; c < spec.classes; ++c) prototypes.push_back(make_prototype(spec, rng));

  support::Rng train_rng = rng.split();
  support::Rng test_rng = rng.split();
  TrainTest out;
  out.train = generate_split(spec, prototypes, spec.train_size, train_rng);
  out.test = generate_split(spec, prototypes, spec.test_size, test_rng);
  return out;
}

DatasetSpec cifar10_like(float scale, std::uint64_t seed) {
  DatasetSpec spec;
  spec.name = "cifar10-syn";
  spec.classes = 10;
  spec.train_size = scaled(2000, scale);
  spec.test_size = scaled(500, scale);
  spec.noise = 8.0F;
  spec.seed = seed;
  return spec;
}

DatasetSpec svhn_like(float scale, std::uint64_t seed) {
  DatasetSpec spec;
  spec.name = "svhn-syn";
  spec.classes = 10;
  spec.train_size = scaled(2000, scale);
  spec.test_size = scaled(500, scale);
  // SVHN digits are an easier task than CIFAR-10 (paper accuracies ~95%).
  spec.noise = 5.0F;
  spec.seed = seed;
  return spec;
}

DatasetSpec cifar100_like(float scale, std::uint64_t seed) {
  DatasetSpec spec;
  spec.name = "cifar100-syn";
  spec.classes = 100;
  spec.train_size = scaled(4000, scale);
  spec.test_size = scaled(1000, scale);
  // 100 classes with the same budget: hardest task (paper accuracies ~70%).
  spec.noise = 4.5F;
  spec.seed = seed;
  return spec;
}

DatasetSpec imagenet_like(float scale, std::uint64_t seed) {
  DatasetSpec spec;
  spec.name = "imagenet-syn";
  spec.classes = 50;
  spec.train_size = scaled(3000, scale);
  spec.test_size = scaled(750, scale);
  spec.noise = 5.0F;
  spec.seed = seed;
  return spec;
}

BatchIterator::BatchIterator(const Dataset& dataset, std::int64_t batch_size,
                             support::Rng& rng, bool shuffle)
    : dataset_(dataset), batch_size_(batch_size), rng_(rng), shuffle_(shuffle) {
  if (batch_size < 1) throw std::invalid_argument("BatchIterator: batch_size < 1");
  order_.resize(static_cast<std::size_t>(dataset.size()));
  for (std::size_t i = 0; i < order_.size(); ++i) order_[i] = i;
  reset();
}

void BatchIterator::reset() {
  cursor_ = 0;
  if (shuffle_) rng_.shuffle(order_);
}

bool BatchIterator::next(tensor::Tensor& images, std::vector<int>& labels) {
  const std::int64_t total = dataset_.size();
  if (cursor_ >= total) return false;
  const std::int64_t count = std::min(batch_size_, total - cursor_);
  const auto& spec = dataset_.spec;
  const std::int64_t image_size = spec.channels * spec.height * spec.width;
  images = tensor::Tensor(
      tensor::Shape{count, spec.channels, spec.height, spec.width});
  labels.resize(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    const std::size_t src = order_[static_cast<std::size_t>(cursor_ + i)];
    const float* src_ptr =
        dataset_.images.data() + static_cast<std::int64_t>(src) * image_size;
    std::copy(src_ptr, src_ptr + image_size, images.data() + i * image_size);
    labels[static_cast<std::size_t>(i)] = dataset_.labels[src];
  }
  cursor_ += count;
  return true;
}

std::int64_t BatchIterator::batches_per_epoch() const {
  return (dataset_.size() + batch_size_ - 1) / batch_size_;
}

}  // namespace flightnn::data
