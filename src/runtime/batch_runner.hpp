#pragma once

// Batched inference driver: fans one compiled QuantizedNetwork out across
// batch elements on the shared thread pool. The network is immutable after
// compile(), so concurrent run() calls share weights with no synchronization;
// each image's forward pass is fully independent and the kernels inside each
// pass may themselves parallelize across output-filter blocks (nested
// parallel_for draws from the same pool).
//
// Determinism: per-image results are bit-identical to serial execution at
// any thread count, and the aggregate op counts are sums of per-image
// integers, so they are thread-count-invariant too.

#include <vector>

#include "data/dataset.hpp"
#include "inference/quantized_network.hpp"
#include "tensor/tensor.hpp"

namespace flightnn::runtime {

struct BatchResult {
  std::vector<tensor::Tensor> logits;  // one logits tensor per image, in order
  inference::NetworkOpCounts counts;
};

class BatchRunner {
 public:
  // The network must outlive the runner; it is shared, never copied.
  explicit BatchRunner(const inference::QuantizedNetwork& network)
      : network_(&network) {}

  // Run every image ([C, H, W] or [1, C, H, W]) through the network.
  [[nodiscard]] BatchResult run(const std::vector<tensor::Tensor>& images) const;

  // Run an NCHW batch tensor.
  [[nodiscard]] BatchResult run(const tensor::Tensor& batch) const;

  // Allocation-reusing variants: write into `result`, recycling its logits
  // tensors and counter storage. Feeding the same `result` back across
  // batches is the zero-allocation steady state of DESIGN.md §9 (asserted by
  // tests/arena_allocation_test).
  void run(const std::vector<tensor::Tensor>& images, BatchResult& result) const;
  void run(const tensor::Tensor& batch, BatchResult& result) const;

  // Top-k classification accuracy over a dataset, images evaluated in
  // parallel. Matches QuantizedNetwork::evaluate exactly.
  [[nodiscard]] double evaluate(const data::Dataset& dataset, int top_k = 1,
                                inference::NetworkOpCounts* counts = nullptr) const;

 private:
  const inference::QuantizedNetwork* network_;
};

}  // namespace flightnn::runtime
