#pragma once

// Batched inference driver: fans one compiled QuantizedNetwork out across
// batch elements on the shared thread pool. The network is immutable after
// compile(), so concurrent run() calls share weights with no synchronization;
// each image's forward pass is fully independent and the kernels inside each
// pass may themselves parallelize across output-filter blocks (nested
// parallel_for draws from the same pool).
//
// Public API (the single entry point, DESIGN.md §11): callers build an
// InferenceRequest and get an InferenceResult back, either owning
// (`run(request)`) or into preallocated storage (`run(request, result)`,
// the zero-allocation steady state of DESIGN.md §9). Dataset evaluation
// (`evaluate`) and the serving layer (serving::Server) both sit on this one
// path. The pre-request-API overloads survive as deprecated forwarding
// shims for one release.
//
// Determinism: per-image results are bit-identical to serial execution at
// any thread count, and the aggregate op counts are sums of per-image
// integers, so they are thread-count-invariant too.

#include <atomic>
#include <vector>

#include "data/dataset.hpp"
#include "inference/quantized_network.hpp"
#include "runtime/inference_request.hpp"
#include "tensor/tensor.hpp"

namespace flightnn::runtime {

// Pre-request-API result type, kept alive for the deprecated shims below.
struct BatchResult {
  std::vector<tensor::Tensor> logits;  // one logits tensor per image, in order
  inference::NetworkOpCounts counts;
};

class BatchRunner {
 public:
  // The network must outlive the runner; it is shared, never copied.
  explicit BatchRunner(const inference::QuantizedNetwork& network)
      : network_(&network) {}

  // Owning entry point: run every request image ([C, H, W] or [1, C, H, W])
  // through the network. The result echoes request.id and carries logits,
  // argmax, op counts and timing (queue_seconds = 0 for direct calls).
  [[nodiscard]] InferenceResult run(const InferenceRequest& request) const;

  // Preallocated entry point: write into `result`, recycling its logits
  // tensors, argmax storage and counter scratch. Feeding the same `result`
  // back across batches is the zero-allocation steady state of DESIGN.md §9
  // (asserted by tests/arena_allocation_test). When `per_image_counts` is
  // non-null it receives one NetworkOpCounts per request image -- the
  // serving batcher uses this to attribute a fused batch's census back to
  // the individual requests that rode in it.
  void run(const InferenceRequest& request, InferenceResult& result,
           std::vector<inference::NetworkOpCounts>* per_image_counts =
               nullptr) const;

  // Pre-size every thread's planned arena and scratch pools to the
  // network's memory plan so the FIRST batch already runs allocation-free
  // (no grow-once warmup): adopts the plan's arena layout and prewarms the
  // tensor pool on the calling thread and on every pool worker, and
  // reserves the caller's per-image counter scratch for `max_batch` images.
  // No-op beyond the counter reserve when the network has no plan (dynamic
  // arena route). Must be called from outside the pool (any non-worker
  // thread); idempotent and cheap to repeat. run() warms lazily on first
  // use, so calling this is an optimization, not a requirement.
  void warm(std::size_t max_batch = 64) const;

  // Top-k classification accuracy over a dataset. A thin wrapper over the
  // request path: the dataset is evaluated as a sequence of fixed-size
  // InferenceRequests, so serving and dataset evaluation exercise the same
  // code path. Matches QuantizedNetwork::evaluate exactly.
  [[nodiscard]] double evaluate(const data::Dataset& dataset, int top_k = 1,
                                inference::NetworkOpCounts* counts = nullptr) const;

  // --- Deprecated pre-request-API shims (one release; DESIGN.md §11) ------

  [[deprecated("use run(InferenceRequest) instead")]] [[nodiscard]]
  BatchResult run(const std::vector<tensor::Tensor>& images) const;

  [[deprecated("use run(InferenceRequest::from_nchw(batch)) instead")]]
  [[nodiscard]]
  BatchResult run(const tensor::Tensor& batch) const;

  [[deprecated(
      "use run(InferenceRequest, InferenceResult&) instead")]]
  void run(const std::vector<tensor::Tensor>& images,
           BatchResult& result) const;

  [[deprecated(
      "use run(InferenceRequest::from_nchw(batch), InferenceResult&) "
      "instead")]]
  void run(const tensor::Tensor& batch, BatchResult& result) const;

 private:
  // The one forward-pass core every public entry point funnels into: run
  // `n` images through the network in parallel, producing per-image logits
  // and op counts. `logits` and `counts` are resized to `n`.
  void run_images(const tensor::Tensor* images, std::size_t n,
                  std::vector<tensor::Tensor>& logits,
                  std::vector<inference::NetworkOpCounts>& counts) const;
  // Non-deprecated core of the legacy shims.
  void run_legacy(const std::vector<tensor::Tensor>& images,
                  BatchResult& result) const;

  const inference::QuantizedNetwork* network_;
  // First-run lazy-warm latch (see warm()). Relaxed: a racing duplicate
  // warm is idempotent, and the warming thread synchronizes with its own
  // subsequent batch by program order.
  mutable std::atomic<bool> warmed_{false};
};

}  // namespace flightnn::runtime
