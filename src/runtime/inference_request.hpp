#pragma once

// The unified inference API: one request/result pair that the BatchRunner,
// the serving-layer dynamic batcher (src/serving) and the deploy examples
// all speak. A request carries the caller's images plus an opaque id; the
// result echoes the id and returns logits, per-image argmax, the op census
// for exactly this request's images, and per-request timing (how long the
// request waited in a serving queue and how long its forward pass took).
//
// Direct BatchRunner::run calls fill timing.compute_seconds and leave
// timing.queue_seconds at zero; the serving batcher overwrites the queue
// fields with the measured admission-to-dispatch wait and the size of the
// dynamic batch the request actually rode in.

#include <cstdint>
#include <vector>

#include "inference/quantized_network.hpp"
#include "tensor/tensor.hpp"

namespace flightnn::runtime {

struct InferenceRequest {
  // Caller-assigned correlation id, echoed verbatim in the result. The
  // runtime never interprets it.
  std::uint64_t id = 0;
  // One [C, H, W] (or [1, C, H, W]) tensor per image.
  std::vector<tensor::Tensor> images;

  // Convenience constructors for the two common call shapes.
  static InferenceRequest from_image(tensor::Tensor image,
                                     std::uint64_t id = 0);
  // Split an NCHW batch tensor into per-image tensors (copies).
  static InferenceRequest from_nchw(const tensor::Tensor& batch,
                                    std::uint64_t id = 0);
};

// Per-request observability attached to every InferenceResult.
struct RequestTiming {
  // Admission -> dispatch wait in a serving queue (0 for direct runs).
  double queue_seconds = 0.0;
  // Wall time of the forward pass that produced this request's logits. When
  // the request was dynamically batched with others, this is the whole
  // batch's compute time (the request was in flight for all of it).
  double compute_seconds = 0.0;
  // Number of images in the executed batch this request rode in. Equals the
  // request's own image count for direct runs; may be larger under the
  // serving batcher.
  std::int64_t batch_size = 0;
};

struct InferenceResult {
  std::uint64_t id = 0;
  std::vector<tensor::Tensor> logits;  // one per request image, in order
  std::vector<int> argmax;             // per-image argmax class index
  // Op census for this request's images only (not the whole dynamic batch).
  inference::NetworkOpCounts counts;
  RequestTiming timing;
};

// Split an NCHW batch into per-image [C, H, W] tensors, recycling the
// tensors already in `images` when shapes match (zero-allocation steady
// state). Shared by InferenceRequest::from_nchw and the deprecated
// BatchRunner NCHW shims.
void split_nchw(const tensor::Tensor& batch,
                std::vector<tensor::Tensor>& images);

}  // namespace flightnn::runtime
