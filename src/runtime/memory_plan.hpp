#pragma once

// Arena-layout substrate for the offline memory planner (DESIGN.md §15).
// This header owns the *mechanics* of planned scratch memory -- buffer
// intervals, the greedy best-fit interval coloring that assigns byte offsets,
// and the immutable `ArenaLayout` a compiled plan carries -- while the
// *analysis* that produces intervals from a NetworkProgram lives one layer up
// in src/inference/memory_plan.{hpp,cpp}. Keeping the mechanics here (below
// flightnn_inference in the link graph) lets ScratchArena adopt a layout
// without the threadpool library ever depending on the inference IR.
//
// Layout model: every planned buffer is a `BufferInterval` -- a (slot, op)
// keyed request for `bytes` that is live over the inclusive op range
// [def_op, last_use_op]. Two intervals may share bytes iff their live ranges
// are temporally disjoint; `assign_arena_offsets` packs them into one
// 64-byte-aligned arena whose capacity is the plan's exact scratch peak.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace flightnn::runtime {

// Slot ids for per-thread scratch. One per independent scratch use; two call
// sites may share a slot only if they can never be live simultaneously on
// one thread (see scratch_arena.hpp for the full lifetime rules). The enum
// lives here so both the arena (dynamic path) and the planner (planned path)
// key buffers the same way.
enum class Scratch : std::size_t {
  kConvAccumulator = 0,   // int32/int64 accumulator plane(s) for ShiftConv2d
  kConvOffsets,           // int64 im2row input-offset table for ShiftConv2d
  kLinearAccumulator,     // int64 accumulator row for ShiftLinear
  kQuantValues,           // int32 quantized activations (quantize_*_into)
  kGemmPackA,             // f32 packed A micro-panels (core/gemm)
  kSlotCount,
};

inline constexpr std::size_t kScratchSlotCount =
    static_cast<std::size_t>(Scratch::kSlotCount);

// All planned offsets and extents are multiples of this, so any scalar or
// SIMD kernel can assume its buffer starts on a cache-line boundary and no
// two buffers false-share a line.
inline constexpr std::size_t kArenaAlignment = 64;

inline constexpr std::size_t align_up(std::size_t n) {
  return (n + (kArenaAlignment - 1)) & ~(kArenaAlignment - 1);
}

// Sentinel for "no planned placement" (interval not yet colored, or lookup
// miss for an (op, slot) the plan never recorded).
inline constexpr std::size_t kUnassignedOffset =
    static_cast<std::size_t>(-1);

// One planned buffer: a scratch request by op `op` for slot `slot`, live
// over the inclusive op interval [def_op, last_use_op]. `bytes` is the exact
// request; the colorer rounds placements up to kArenaAlignment internally.
struct BufferInterval {
  std::uint32_t op = 0;            // op whose kernel fetches this buffer
  Scratch slot = Scratch::kConvAccumulator;
  std::size_t bytes = 0;
  std::uint32_t def_op = 0;        // first op at which the buffer is live
  std::uint32_t last_use_op = 0;   // last op at which the buffer is live
  std::size_t offset = kUnassignedOffset;  // assigned by the colorer
};

// Greedy best-fit interval-graph coloring: sort intervals by size
// (descending, ties broken by def time then op for determinism), then place
// each into the smallest 64-byte-aligned gap among the already-placed
// intervals whose live ranges overlap it, extending the arena when no gap
// fits. Fills every `offset` in place and returns the arena capacity in
// bytes (64-byte aligned). Postconditions the property tests assert:
// temporally-overlapping intervals occupy disjoint byte ranges, and capacity
// equals the peak over ops of the aligned sum of live bytes or better --
// never worse than sum-of-all.
std::size_t assign_arena_offsets(std::vector<BufferInterval>& intervals);

// Immutable planned layout for one compiled network: the colored intervals
// plus an O(1) dense (op, slot) -> placement table. Identified by a
// process-unique id so a thread-local arena can tell "same layout I already
// adopted" from "new network, re-adopt" without ever dereferencing a stored
// pointer to a possibly-destroyed layout.
class ArenaLayout {
 public:
  struct Extent {
    std::size_t offset = kUnassignedOffset;
    std::size_t bytes = 0;
  };

  // Colors `intervals` (filling offsets) and builds the lookup table for ops
  // [0, op_count). Intervals are retained for introspection/tests.
  ArenaLayout(std::vector<BufferInterval> intervals, std::uint32_t op_count);

  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] std::size_t capacity_bytes() const { return capacity_bytes_; }
  [[nodiscard]] std::uint32_t op_count() const { return op_count_; }
  [[nodiscard]] const std::vector<BufferInterval>& intervals() const {
    return intervals_;
  }

  // Placement recorded for (op, slot); offset == kUnassignedOffset when the
  // plan has no buffer for that pair.
  [[nodiscard]] Extent find(std::uint32_t op, Scratch slot) const {
    const std::size_t index =
        static_cast<std::size_t>(op) * kScratchSlotCount +
        static_cast<std::size_t>(slot);
    if (index >= table_.size()) return Extent{};
    return table_[index];
  }

 private:
  std::uint64_t id_;
  std::uint32_t op_count_;
  std::size_t capacity_bytes_ = 0;
  std::vector<BufferInterval> intervals_;
  std::vector<Extent> table_;  // dense op-major (op * kSlotCount + slot)
};

// What a kernel invocation needs to fetch its planned buffers: which layout
// and which op it is executing as. Passed by pointer down the hot path
// (nullptr == dynamic grow-once route); the layout must outlive the call,
// which holds because steps keep it alive through the owning network's
// shared MemoryPlan.
struct PlanContext {
  const ArenaLayout* layout = nullptr;
  std::uint32_t op = 0;
};

}  // namespace flightnn::runtime
