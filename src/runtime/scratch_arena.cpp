#include "runtime/scratch_arena.hpp"

namespace flightnn::runtime {

namespace {

template <typename T>
std::vector<T>& resized(std::vector<T>& buffer, std::size_t n) {
  if (buffer.capacity() < n) buffer.reserve(n);
  buffer.resize(n);
  return buffer;
}

}  // namespace

ScratchArena& ScratchArena::current() {
  thread_local ScratchArena arena;
  return arena;
}

std::vector<std::int64_t>& ScratchArena::i64(Scratch slot, std::size_t n) {
  return resized(i64_[static_cast<std::size_t>(slot)], n);
}

std::vector<std::int32_t>& ScratchArena::i32(Scratch slot, std::size_t n) {
  return resized(i32_[static_cast<std::size_t>(slot)], n);
}

std::vector<float>& ScratchArena::f32(Scratch slot, std::size_t n) {
  return resized(f32_[static_cast<std::size_t>(slot)], n);
}

void ScratchArena::adopt_layout(const ArenaLayout& layout) {
  const std::size_t capacity = layout.capacity_bytes();
  if (capacity > block_bytes_) {
    block_ = std::make_unique<std::byte[]>(capacity + kArenaAlignment);
    const auto addr = reinterpret_cast<std::uintptr_t>(block_.get());
    const std::uintptr_t aligned =
        (addr + (kArenaAlignment - 1)) &
        ~static_cast<std::uintptr_t>(kArenaAlignment - 1);
    base_ = block_.get() + (aligned - addr);
    block_bytes_ = capacity;
  }
  layout_id_ = layout.id();
  planned_capacity_ = capacity;
}

void* ScratchArena::planned_fetch(const PlanContext* ctx, Scratch slot,
                                  std::size_t bytes) {
  if (ctx == nullptr || ctx->layout == nullptr) return nullptr;
  const ArenaLayout& layout = *ctx->layout;
  if (layout_id_ != layout.id()) adopt_layout(layout);
  const ArenaLayout::Extent extent = layout.find(ctx->op, slot);
  if (extent.offset == kUnassignedOffset || extent.bytes < bytes ||
      extent.offset + align_up(extent.bytes) > planned_capacity_) {
    ++plan_misses_;
    return nullptr;
  }
  ++planned_hits_;
  return base_ + extent.offset;
}

std::int64_t* ScratchArena::i64p(const PlanContext* ctx, Scratch slot,
                                 std::size_t n) {
  if (void* p = planned_fetch(ctx, slot, n * sizeof(std::int64_t))) {
    return static_cast<std::int64_t*>(p);
  }
  return i64(slot, n).data();
}

std::int32_t* ScratchArena::i32p(const PlanContext* ctx, Scratch slot,
                                 std::size_t n) {
  if (void* p = planned_fetch(ctx, slot, n * sizeof(std::int32_t))) {
    return static_cast<std::int32_t*>(p);
  }
  return i32(slot, n).data();
}

float* ScratchArena::f32p(const PlanContext* ctx, Scratch slot,
                          std::size_t n) {
  if (void* p = planned_fetch(ctx, slot, n * sizeof(float))) {
    return static_cast<float*>(p);
  }
  return f32(slot, n).data();
}

std::size_t ScratchArena::footprint_bytes() const {
  std::size_t bytes = 0;
  for (std::size_t s = 0; s < kSlots; ++s) {
    bytes += i64_[s].capacity() * sizeof(std::int64_t);
    bytes += i32_[s].capacity() * sizeof(std::int32_t);
    bytes += f32_[s].capacity() * sizeof(float);
  }
  if (block_) bytes += block_bytes_ + kArenaAlignment;
  return bytes;
}

void ScratchArena::trim() {
  for (std::size_t s = 0; s < kSlots; ++s) {
    std::vector<std::int64_t>().swap(i64_[s]);
    std::vector<std::int32_t>().swap(i32_[s]);
    std::vector<float>().swap(f32_[s]);
  }
  block_.reset();
  block_bytes_ = 0;
  base_ = nullptr;
  layout_id_ = 0;
  planned_capacity_ = 0;
}

}  // namespace flightnn::runtime
