#include "runtime/scratch_arena.hpp"

namespace flightnn::runtime {

namespace {

template <typename T>
std::vector<T>& resized(std::vector<T>& buffer, std::size_t n) {
  if (buffer.capacity() < n) buffer.reserve(n);
  buffer.resize(n);
  return buffer;
}

}  // namespace

ScratchArena& ScratchArena::current() {
  thread_local ScratchArena arena;
  return arena;
}

std::vector<std::int64_t>& ScratchArena::i64(Scratch slot, std::size_t n) {
  return resized(i64_[static_cast<std::size_t>(slot)], n);
}

std::vector<std::int32_t>& ScratchArena::i32(Scratch slot, std::size_t n) {
  return resized(i32_[static_cast<std::size_t>(slot)], n);
}

std::vector<float>& ScratchArena::f32(Scratch slot, std::size_t n) {
  return resized(f32_[static_cast<std::size_t>(slot)], n);
}

std::size_t ScratchArena::footprint_bytes() const {
  std::size_t bytes = 0;
  for (std::size_t s = 0; s < kSlots; ++s) {
    bytes += i64_[s].capacity() * sizeof(std::int64_t);
    bytes += i32_[s].capacity() * sizeof(std::int32_t);
    bytes += f32_[s].capacity() * sizeof(float);
  }
  return bytes;
}

void ScratchArena::trim() {
  for (std::size_t s = 0; s < kSlots; ++s) {
    std::vector<std::int64_t>().swap(i64_[s]);
    std::vector<std::int32_t>().swap(i32_[s]);
    std::vector<float>().swap(f32_[s]);
  }
}

}  // namespace flightnn::runtime
