#include "runtime/batch_runner.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "inference/memory_plan.hpp"
#include "nn/loss.hpp"
#include "runtime/thread_pool.hpp"
#include "support/annotations.hpp"
#include "support/check.hpp"

namespace flightnn::runtime {

namespace {

void merge_counts(inference::NetworkOpCounts& into,
                  const inference::NetworkOpCounts& from) {
  into.shifts += from.shifts;
  into.adds += from.adds;
  into.float_macs += from.float_macs;
  into.images += from.images;
}

// Index of the (first) maximum logit; deterministic tie-break by index.
int argmax_of(const tensor::Tensor& logits) {
  const std::int64_t n = logits.numel();
  int best = 0;
  float best_value = n > 0 ? logits[0] : 0.0F;
  for (std::int64_t i = 1; i < n; ++i) {
    if (logits[i] > best_value) {
      best_value = logits[i];
      best = static_cast<int>(i);
    }
  }
  return best;
}

// Calling-thread per-image counter scratch, reused across batches. A named
// accessor (not a function-local in run) so warm() can pre-reserve it.
std::vector<inference::NetworkOpCounts>& counts_scratch() {
  thread_local std::vector<inference::NetworkOpCounts> counts;
  return counts;
}

}  // namespace

FLIGHTNN_COLD_ALLOC void BatchRunner::warm(std::size_t max_batch) const {
  counts_scratch().reserve(max_batch);
  const inference::MemoryPlan* plan = network_->memory_plan();
  if (plan != nullptr) {
    // Every thread that can execute a forward pass gets the planned arena
    // and a pool prewarmed to the network's activation working set: the
    // caller (which participates in its own parallel_for) and each pool
    // worker (for_each_worker's rendezvous guarantees all of them run it).
    plan->warm_thread();
    global_pool().for_each_worker([plan] { plan->warm_thread(); });
  }
  warmed_.store(true, std::memory_order_relaxed);
}

FLIGHTNN_HOT void BatchRunner::run_images(
    const tensor::Tensor* images, std::size_t n,
    std::vector<tensor::Tensor>& logits,
    std::vector<inference::NetworkOpCounts>& counts) const {
  // Both containers recycle their storage across batches: once sized to the
  // steady-state batch shape they never reallocate (the operator-new hook in
  // tests/arena_allocation_test holds this to zero).
  // FLIGHTNN_LINT_SUPPRESS(hot-no-alloc): grow-once; recycles logits tensors in place
  logits.resize(n);
  // FLIGHTNN_LINT_SUPPRESS(hot-no-alloc): grow-once; per-image slots keep aggregation deterministic
  counts.assign(n, {});
  parallel_for(0, static_cast<std::int64_t>(n), 1,
               [&](std::int64_t lo, std::int64_t hi) {
                 for (std::int64_t i = lo; i < hi; ++i) {
                   const auto idx = static_cast<std::size_t>(i);
                   // Release last batch's logits buffer into THIS worker's
                   // pool before the forward pass acquires its output.
                   // Image->worker assignment varies run to run; releasing
                   // first keeps each worker's acquire/release cycle locally
                   // balanced instead of needing a spare buffer per thread
                   // that happened to own the index last time.
                   logits[idx] = tensor::Tensor();
                   logits[idx] = network_->run(images[idx], &counts[idx]);
                 }
               });
}

FLIGHTNN_HOT FLIGHTNN_API_ENTRY void BatchRunner::run(
    const InferenceRequest& request, InferenceResult& result,
    std::vector<inference::NetworkOpCounts>* per_image_counts) const {
  // Boundary contract: every image must be a [C, H, W] or [1, C, H, W]
  // tensor. The network re-checks shapes layer by layer; checking rank here
  // makes a malformed request fail at the API boundary, named after it.
  for (const auto& image : request.images) {
    const auto rank = image.shape().rank();
    FLIGHTNN_CHECK(rank == 3 || (rank == 4 && image.shape()[0] == 1),
                   "BatchRunner::run: images must be [C,H,W] or [1,C,H,W], "
                   "got ", image.shape().to_string());
  }
  // First call pays the warmup (arena adoption + pool prewarm on every
  // thread); after that the latch short-circuits.
  if (!warmed_.load(std::memory_order_relaxed)) {
    warm(request.images.size());
  }
  // Calling-thread scratch, reused across batches. The local reference is
  // load-bearing: a thread_local resolved inside a worker lambda would
  // name each worker's own (empty) instance.
  auto& counts =
      per_image_counts != nullptr ? *per_image_counts : counts_scratch();

  result.id = request.id;
  const auto start = std::chrono::steady_clock::now();
  run_images(request.images.data(), request.images.size(), result.logits,
             counts);
  const auto stop = std::chrono::steady_clock::now();

  // FLIGHTNN_LINT_SUPPRESS(hot-no-alloc): grow-once; callers reuse the result struct, so steady-state resizes never reallocate
  result.argmax.resize(request.images.size());
  for (std::size_t i = 0; i < result.logits.size(); ++i) {
    result.argmax[i] = argmax_of(result.logits[i]);
  }
  result.counts = {};
  for (const auto& c : counts) merge_counts(result.counts, c);
  result.timing.queue_seconds = 0.0;
  result.timing.compute_seconds =
      std::chrono::duration<double>(stop - start).count();
  result.timing.batch_size =
      static_cast<std::int64_t>(request.images.size());
}

InferenceResult BatchRunner::run(const InferenceRequest& request) const {
  InferenceResult result;
  run(request, result);
  return result;
}

FLIGHTNN_API_ENTRY double BatchRunner::evaluate(
    const data::Dataset& dataset, int top_k,
    inference::NetworkOpCounts* counts) const {
  FLIGHTNN_CHECK(top_k >= 1, "BatchRunner::evaluate: top_k must be >= 1, got ",
                 top_k);
  const std::int64_t n = dataset.size();
  if (n == 0) return 0.0;
  // The dataset is fed through the unified request path in fixed-size
  // chunks: large enough to saturate the pool across images, small enough
  // to bound the per-chunk working set. Calling-thread scratch; the local
  // references matter (see run above).
  constexpr std::int64_t kChunk = 64;
  thread_local InferenceRequest request_tls;
  thread_local InferenceResult result_tls;
  auto& request = request_tls;
  auto& result = result_tls;
  std::int64_t hits = 0;
  for (std::int64_t lo = 0; lo < n; lo += kChunk) {
    const std::int64_t hi = std::min(n, lo + kChunk);
    request.images.resize(static_cast<std::size_t>(hi - lo));
    for (std::int64_t i = lo; i < hi; ++i) {
      request.images[static_cast<std::size_t>(i - lo)] = dataset.image(i);
    }
    run(request, result);
    for (std::int64_t i = lo; i < hi; ++i) {
      const auto& logits = result.logits[static_cast<std::size_t>(i - lo)];
      const tensor::Tensor row =
          logits.reshaped(tensor::Shape{1, logits.numel()});
      if (nn::top_k_accuracy(row, {dataset.labels[static_cast<std::size_t>(i)]},
                             top_k) > 0.5) {
        ++hits;
      }
    }
    if (counts != nullptr) merge_counts(*counts, result.counts);
  }
  return static_cast<double>(hits) / static_cast<double>(n);
}

// --- Deprecated shims --------------------------------------------------------
// Implemented over the non-deprecated core so the shim bodies themselves
// compile -Wdeprecated-declarations-clean.

void BatchRunner::run_legacy(const std::vector<tensor::Tensor>& images,
                             BatchResult& result) const {
  auto& counts = counts_scratch();
  run_images(images.data(), images.size(), result.logits, counts);
  result.counts = {};
  for (const auto& c : counts) merge_counts(result.counts, c);
}

void BatchRunner::run(const std::vector<tensor::Tensor>& images,
                      BatchResult& result) const {
  run_legacy(images, result);
}

BatchResult BatchRunner::run(const std::vector<tensor::Tensor>& images) const {
  BatchResult result;
  run_legacy(images, result);
  return result;
}

void BatchRunner::run(const tensor::Tensor& batch, BatchResult& result) const {
  // Per-image views are calling-thread scratch; the tensors inside recycle
  // their buffers through the per-thread pool across batches.
  thread_local std::vector<tensor::Tensor> images_tls;
  auto& images = images_tls;
  split_nchw(batch, images);
  run_legacy(images, result);
}

BatchResult BatchRunner::run(const tensor::Tensor& batch) const {
  BatchResult result;
  thread_local std::vector<tensor::Tensor> images_tls;
  auto& images = images_tls;
  split_nchw(batch, images);
  run_legacy(images, result);
  return result;
}

}  // namespace flightnn::runtime
