#include "runtime/batch_runner.hpp"

#include <cstring>

#include "nn/loss.hpp"
#include "runtime/thread_pool.hpp"
#include "support/check.hpp"

namespace flightnn::runtime {

namespace {

void merge_counts(inference::NetworkOpCounts& into,
                  const inference::NetworkOpCounts& from) {
  into.shifts += from.shifts;
  into.adds += from.adds;
  into.float_macs += from.float_macs;
  into.images += from.images;
}

}  // namespace

BatchResult BatchRunner::run(const std::vector<tensor::Tensor>& images) const {
  const auto n = static_cast<std::int64_t>(images.size());
  BatchResult result;
  result.logits.resize(images.size());
  // Per-image count slots keep the aggregation race-free and deterministic:
  // the final merge happens on the calling thread in index order.
  std::vector<inference::NetworkOpCounts> counts(images.size());
  parallel_for(0, n, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      result.logits[idx] = network_->run(images[idx], &counts[idx]);
    }
  });
  for (const auto& c : counts) merge_counts(result.counts, c);
  return result;
}

BatchResult BatchRunner::run(const tensor::Tensor& batch) const {
  const auto& s = batch.shape();
  FLIGHTNN_CHECK(s.rank() == 4, "BatchRunner::run: NCHW batch expected, got ",
                 s.to_string());
  const std::int64_t n = s[0];
  const std::int64_t image_numel = s[1] * s[2] * s[3];
  std::vector<tensor::Tensor> images(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    tensor::Tensor image(tensor::Shape{s[1], s[2], s[3]});
    std::memcpy(image.data(), batch.data() + i * image_numel,
                static_cast<std::size_t>(image_numel) * sizeof(float));
    images[static_cast<std::size_t>(i)] = std::move(image);
  }
  return run(images);
}

double BatchRunner::evaluate(const data::Dataset& dataset, int top_k,
                             inference::NetworkOpCounts* counts) const {
  const std::int64_t n = dataset.size();
  if (n == 0) return 0.0;
  std::vector<inference::NetworkOpCounts> image_counts(
      static_cast<std::size_t>(n));
  std::vector<std::uint8_t> hit(static_cast<std::size_t>(n), 0);
  parallel_for(0, n, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      tensor::Tensor logits =
          network_->run(dataset.image(i), &image_counts[idx]);
      const tensor::Tensor row =
          logits.reshaped(tensor::Shape{1, logits.numel()});
      hit[idx] = nn::top_k_accuracy(row, {dataset.labels[idx]}, top_k) > 0.5
                     ? 1
                     : 0;
    }
  });
  std::int64_t hits = 0;
  for (const std::uint8_t h : hit) hits += h;
  if (counts != nullptr) {
    for (const auto& c : image_counts) merge_counts(*counts, c);
  }
  return static_cast<double>(hits) / static_cast<double>(n);
}

}  // namespace flightnn::runtime
