#include "runtime/batch_runner.hpp"

#include <cstring>

#include "nn/loss.hpp"
#include "runtime/thread_pool.hpp"
#include "support/check.hpp"

namespace flightnn::runtime {

namespace {

void merge_counts(inference::NetworkOpCounts& into,
                  const inference::NetworkOpCounts& from) {
  into.shifts += from.shifts;
  into.adds += from.adds;
  into.float_macs += from.float_macs;
  into.images += from.images;
}

}  // namespace

void BatchRunner::run(const std::vector<tensor::Tensor>& images,
                      BatchResult& result) const {
  const auto n = static_cast<std::int64_t>(images.size());
  result.logits.resize(images.size());  // recycles logits tensors in place
  result.counts = {};
  // Per-image count slots keep the aggregation race-free and deterministic:
  // the final merge happens on the calling thread in index order. The slot
  // vector is calling-thread scratch, reused across batches. The local
  // reference is load-bearing: a thread_local named directly inside the
  // lambda below would resolve to each worker's own (empty) instance.
  thread_local std::vector<inference::NetworkOpCounts> counts_tls;
  auto& counts = counts_tls;
  counts.assign(images.size(), {});
  parallel_for(0, n, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      result.logits[idx] = network_->run(images[idx], &counts[idx]);
    }
  });
  for (const auto& c : counts) merge_counts(result.counts, c);
}

BatchResult BatchRunner::run(const std::vector<tensor::Tensor>& images) const {
  BatchResult result;
  run(images, result);
  return result;
}

void BatchRunner::run(const tensor::Tensor& batch, BatchResult& result) const {
  const auto& s = batch.shape();
  FLIGHTNN_CHECK(s.rank() == 4, "BatchRunner::run: NCHW batch expected, got ",
                 s.to_string());
  const std::int64_t n = s[0];
  const std::int64_t image_numel = s[1] * s[2] * s[3];
  // Per-image views are calling-thread scratch; the tensors inside recycle
  // their buffers through the per-thread pool across batches.
  thread_local std::vector<tensor::Tensor> images;
  images.resize(static_cast<std::size_t>(n));
  const tensor::Shape image_shape{s[1], s[2], s[3]};
  for (std::int64_t i = 0; i < n; ++i) {
    auto& image = images[static_cast<std::size_t>(i)];
    if (image.shape() != image_shape) image = tensor::Tensor(image_shape);
    std::memcpy(image.data(), batch.data() + i * image_numel,
                static_cast<std::size_t>(image_numel) * sizeof(float));
  }
  run(images, result);
}

BatchResult BatchRunner::run(const tensor::Tensor& batch) const {
  BatchResult result;
  run(batch, result);
  return result;
}

double BatchRunner::evaluate(const data::Dataset& dataset, int top_k,
                             inference::NetworkOpCounts* counts) const {
  const std::int64_t n = dataset.size();
  if (n == 0) return 0.0;
  // Calling-thread scratch; the local references matter (see run above).
  thread_local std::vector<inference::NetworkOpCounts> image_counts_tls;
  thread_local std::vector<std::uint8_t> hit_tls;
  auto& image_counts = image_counts_tls;
  auto& hit = hit_tls;
  image_counts.assign(static_cast<std::size_t>(n), {});
  hit.assign(static_cast<std::size_t>(n), 0);
  parallel_for(0, n, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      tensor::Tensor logits =
          network_->run(dataset.image(i), &image_counts[idx]);
      const tensor::Tensor row =
          logits.reshaped(tensor::Shape{1, logits.numel()});
      hit[idx] = nn::top_k_accuracy(row, {dataset.labels[idx]}, top_k) > 0.5
                     ? 1
                     : 0;
    }
  });
  std::int64_t hits = 0;
  for (const std::uint8_t h : hit) hits += h;
  if (counts != nullptr) {
    for (const auto& c : image_counts) merge_counts(*counts, c);
  }
  return static_cast<double>(hits) / static_cast<double>(n);
}

}  // namespace flightnn::runtime
