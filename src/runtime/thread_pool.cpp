#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

#include "support/check.hpp"
#include "support/env.hpp"
#include "support/logging.hpp"

namespace flightnn::runtime {

namespace {

// Shared state of one parallel_for invocation. Chunks are claimed by atomic
// increment; completion is a counted-down rendezvous on `all_done`. Helpers
// hold the state via shared_ptr so a task that was still queued when the
// loop finished can wake up late, find no chunk, and exit harmlessly --
// `body` is only dereferenced while the owning parallel_for is blocked, and
// only for claimed chunks.
struct ParallelState {
  std::int64_t begin = 0;
  std::int64_t end = 0;
  std::int64_t chunk = 1;
  std::int64_t chunks = 0;
  const std::function<void(std::int64_t, std::int64_t)>* body = nullptr;

  std::atomic<std::int64_t> next{0};
  std::atomic<std::int64_t> done{0};
  std::atomic<bool> failed{false};
  std::mutex mutex;
  std::condition_variable all_done;
  std::exception_ptr error;  // guarded by mutex

  void run_chunks() {
    for (;;) {
      const std::int64_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      if (!failed.load(std::memory_order_relaxed)) {
        try {
          const std::int64_t lo = begin + c * chunk;
          const std::int64_t hi = std::min(end, lo + chunk);
          (*body)(lo, hi);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(mutex);
          if (!error) error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
        }
      }
      // Release pairs with the caller's acquire load in wait(): everything
      // the body wrote is visible once done == chunks is observed.
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == chunks) {
        const std::lock_guard<std::mutex> lock(mutex);
        all_done.notify_all();
      }
    }
  }
};

}  // namespace

ThreadPool::ThreadPool(int threads) : threads_(std::max(1, threads)) {
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int w = 0; w < threads_ - 1; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  support::log_debug() << "ThreadPool: " << threads_ << " thread(s) ("
                       << workers_.size() << " worker(s) + caller)";
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, and the queue is drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  FLIGHTNN_CHECK(task != nullptr, "ThreadPool::submit: null task");
  if (workers_.empty()) {
    task();
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    FLIGHTNN_CHECK(!stopping_, "ThreadPool::submit: pool is shutting down");
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::parallel_for(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& body) {
  FLIGHTNN_CHECK(grain > 0, "parallel_for: grain must be >= 1, got ", grain);
  if (end <= begin) return;
  const std::int64_t range = end - begin;
  // A handful of chunks per thread balances load without shrinking chunks
  // below `grain` (the caller's statement of worthwhile work size).
  const std::int64_t target_chunks = static_cast<std::int64_t>(threads_) * 4;
  const std::int64_t chunk =
      std::max(grain, (range + target_chunks - 1) / target_chunks);
  const std::int64_t chunks = (range + chunk - 1) / chunk;
  if (threads_ == 1 || chunks <= 1) {
    body(begin, end);
    return;
  }

  auto state = std::make_shared<ParallelState>();
  state->begin = begin;
  state->end = end;
  state->chunk = chunk;
  state->chunks = chunks;
  state->body = &body;

  const std::int64_t helpers = std::min<std::int64_t>(
      static_cast<std::int64_t>(workers_.size()), chunks - 1);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!stopping_) {
      for (std::int64_t h = 0; h < helpers; ++h) {
        queue_.emplace_back([state] { state->run_chunks(); });
      }
    }
  }
  work_available_.notify_all();

  // The caller works too; afterwards it waits only on chunks claimed by
  // worker threads that are actively executing them.
  state->run_chunks();
  {
    std::unique_lock<std::mutex> lock(state->mutex);
    state->all_done.wait(lock, [&] {
      return state->done.load(std::memory_order_acquire) == state->chunks;
    });
  }
  if (state->error) std::rethrow_exception(state->error);
}

// --- Global configuration ----------------------------------------------------

namespace {

constexpr int kMaxThreads = 1024;

std::mutex g_config_mutex;
int g_threads = 0;  // 0 = not yet resolved
std::unique_ptr<ThreadPool> g_pool;

int hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int resolve_default_threads() {
  if (const auto env = support::env_int("FLIGHTNN_NUM_THREADS")) {
    if (*env >= 1 && *env <= kMaxThreads) return static_cast<int>(*env);
    support::log_warn() << "FLIGHTNN_NUM_THREADS=" << *env << " outside [1, "
                        << kMaxThreads << "]; using hardware concurrency";
  }
  return hardware_threads();
}

}  // namespace

int num_threads() {
  const std::lock_guard<std::mutex> lock(g_config_mutex);
  if (g_threads == 0) g_threads = resolve_default_threads();
  return g_threads;
}

void set_num_threads(int threads) {
  FLIGHTNN_CHECK(threads >= 0 && threads <= kMaxThreads,
                 "set_num_threads: ", threads, " outside [0, ", kMaxThreads,
                 "]");
  std::unique_ptr<ThreadPool> retired;
  {
    const std::lock_guard<std::mutex> lock(g_config_mutex);
    g_threads = threads == 0 ? resolve_default_threads() : threads;
    if (g_pool && g_pool->size() != g_threads) retired = std::move(g_pool);
  }
  // Join the old pool's workers outside the lock so a straggler task that
  // itself consults the global configuration cannot deadlock the teardown.
  retired.reset();
}

ThreadPool& global_pool() {
  const std::lock_guard<std::mutex> lock(g_config_mutex);
  if (g_threads == 0) g_threads = resolve_default_threads();
  if (!g_pool || g_pool->size() != g_threads) {
    g_pool = std::make_unique<ThreadPool>(g_threads);
  }
  return *g_pool;
}

void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& body) {
  FLIGHTNN_CHECK(grain > 0, "parallel_for: grain must be >= 1, got ", grain);
  if (end <= begin) return;
  if (num_threads() == 1) {
    // Serial fast path: no pool, no chunking, one call over the full range.
    body(begin, end);
    return;
  }
  global_pool().parallel_for(begin, end, grain, body);
}

}  // namespace flightnn::runtime
