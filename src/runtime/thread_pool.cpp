#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

#include "support/annotations.hpp"
#include "support/check.hpp"
#include "support/env.hpp"
#include "support/logging.hpp"

namespace flightnn::runtime {

namespace detail {

// Bookkeeping of one in-flight parallel_for. Lives on the calling thread's
// stack for exactly the duration of the call; workers only ever reach it
// through the pool's intrusive list, and the invariant that makes that safe
// is: any thread holding a ParallelOp pointer outside the pool mutex has
// `helpers_inside` incremented for it, and the caller does not return (and
// so does not pop its stack frame) until the op is unlinked and
// `helpers_inside` has drained to zero.
struct ParallelOp {
  std::int64_t begin = 0;
  std::int64_t end = 0;
  std::int64_t chunk = 1;
  std::int64_t chunks = 0;
  void (*invoke)(void*, std::int64_t, std::int64_t) = nullptr;
  void* ctx = nullptr;

  std::atomic<std::int64_t> next{0};   // next chunk index to claim
  std::atomic<std::int64_t> done{0};   // chunks fully executed
  std::atomic<bool> failed{false};
  std::exception_ptr error;            // guarded by the pool mutex
  int helpers_inside = 0;              // guarded by the pool mutex
  ParallelOp* next_op = nullptr;       // intrusive list; guarded by the pool mutex
};

namespace {

// An op is worth entering only while it still has unclaimed chunks; helpers
// skip exhausted ops so they cannot spin on work that is merely draining.
ParallelOp* find_runnable(ParallelOp* head) {
  for (ParallelOp* op = head; op != nullptr; op = op->next_op) {
    if (op->next.load(std::memory_order_relaxed) < op->chunks) return op;
  }
  return nullptr;
}

}  // namespace

}  // namespace detail

ThreadPool::ThreadPool(int threads) : threads_(std::max(1, threads)) {
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int w = 0; w < threads_ - 1; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  support::log_debug() << "ThreadPool: " << threads_ << " thread(s) ("
                       << workers_.size() << " worker(s) + caller)";
}

ThreadPool::~ThreadPool() {
  {
    const support::MutexLock lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::run_op_chunks(detail::ParallelOp& op) {
  for (;;) {
    const std::int64_t c = op.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= op.chunks) return;
    if (!op.failed.load(std::memory_order_relaxed)) {
      try {
        const std::int64_t lo = op.begin + c * op.chunk;
        const std::int64_t hi = std::min(op.end, lo + op.chunk);
        op.invoke(op.ctx, lo, hi);
      } catch (...) {
        const support::MutexLock lock(mutex_);
        if (!op.error) op.error = std::current_exception();
        op.failed.store(true, std::memory_order_relaxed);
      }
    }
    // Release pairs with the caller's acquire load while waiting: everything
    // the body wrote is visible once done == chunks is observed. (The
    // helpers_inside handshake under the pool mutex independently covers the
    // helper-executed chunks.)
    op.done.fetch_add(1, std::memory_order_acq_rel);
  }
}

void ThreadPool::worker_loop() {
  support::MutexLock lock(mutex_);
  for (;;) {
    while (!stopping_ && queue_.empty() &&
           detail::find_runnable(ops_head_) == nullptr) {
      work_available_.wait(mutex_);
    }
    if (detail::ParallelOp* op = detail::find_runnable(ops_head_)) {
      ++op->helpers_inside;  // pins the op: its caller now waits for us
      lock.unlock();
      run_op_chunks(*op);
      lock.lock();
      if (--op->helpers_inside == 0) helpers_idle_.notify_all();
      continue;
    }
    if (!queue_.empty()) {
      std::function<void()> task = std::move(queue_.front());
      queue_.pop_front();
      lock.unlock();
      task();
      lock.lock();
      continue;
    }
    if (stopping_) return;
  }
}

void ThreadPool::submit(std::function<void()> task) {
  FLIGHTNN_CHECK(task != nullptr, "ThreadPool::submit: null task");
  if (workers_.empty()) {
    task();
    return;
  }
  {
    const support::MutexLock lock(mutex_);
    FLIGHTNN_CHECK(!stopping_, "ThreadPool::submit: pool is shutting down");
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

// COLD_ALLOC: warm-path only (submit allocates a std::function per worker);
// never called from steady-state inference.
FLIGHTNN_COLD_ALLOC void ThreadPool::for_each_worker(
    const std::function<void()>& fn) {
  FLIGHTNN_CHECK(fn != nullptr, "ThreadPool::for_each_worker: null fn");
  const int workers = static_cast<int>(workers_.size());
  if (workers == 0) return;
  // Rendezvous: every task blocks after running `fn` until all `workers`
  // tasks have entered, which forces the queue entries onto distinct worker
  // threads (a worker stuck inside one task cannot pop a second).
  struct Rendezvous {
    support::Mutex mutex;
    support::CondVar arrived;
    support::CondVar released;
    int entered FLIGHTNN_GUARDED_BY(mutex) = 0;
    int finished FLIGHTNN_GUARDED_BY(mutex) = 0;
    bool release FLIGHTNN_GUARDED_BY(mutex) = false;
    std::exception_ptr error FLIGHTNN_GUARDED_BY(mutex);
  } sync;
  for (int w = 0; w < workers; ++w) {
    submit([&sync, &fn] {
      std::exception_ptr err;
      try {
        fn();
      } catch (...) {
        err = std::current_exception();
      }
      support::MutexLock lock(sync.mutex);
      if (err && !sync.error) sync.error = err;
      ++sync.entered;
      sync.arrived.notify_all();
      while (!sync.release) sync.released.wait(sync.mutex);
      ++sync.finished;
      sync.arrived.notify_all();
    });
  }
  const support::MutexLock lock(sync.mutex);
  while (sync.entered < workers) sync.arrived.wait(sync.mutex);
  sync.release = true;
  sync.released.notify_all();
  while (sync.finished < workers) sync.arrived.wait(sync.mutex);
  if (sync.error) std::rethrow_exception(sync.error);
}

void ThreadPool::run_parallel(std::int64_t begin, std::int64_t end,
                              std::int64_t grain,
                              void (*invoke)(void*, std::int64_t, std::int64_t),
                              void* ctx) {
  FLIGHTNN_CHECK(grain > 0, "parallel_for: grain must be >= 1, got ", grain);
  if (end <= begin) return;
  const std::int64_t range = end - begin;
  // A handful of chunks per thread balances load without shrinking chunks
  // below `grain` (the caller's statement of worthwhile work size).
  const std::int64_t target_chunks = static_cast<std::int64_t>(threads_) * 4;
  const std::int64_t chunk =
      std::max(grain, (range + target_chunks - 1) / target_chunks);
  const std::int64_t chunks = (range + chunk - 1) / chunk;
  if (threads_ == 1 || chunks <= 1) {
    invoke(ctx, begin, end);
    return;
  }

  detail::ParallelOp op;
  op.begin = begin;
  op.end = end;
  op.chunk = chunk;
  op.chunks = chunks;
  op.invoke = invoke;
  op.ctx = ctx;

  {
    const support::MutexLock lock(mutex_);
    if (!stopping_) {
      // Push at the head: nested ops land in front of the op their caller is
      // already helping with, so free workers drain inner loops first.
      op.next_op = ops_head_;
      ops_head_ = &op;
    }
  }
  work_available_.notify_all();

  // The caller works too; run_op_chunks only returns once every chunk has
  // been claimed (by us or by helpers).
  run_op_chunks(op);

  {
    const support::MutexLock lock(mutex_);
    // Unlink so no new helper can discover the op...
    for (detail::ParallelOp** p = &ops_head_; *p != nullptr;
         p = &(*p)->next_op) {
      if (*p == &op) {
        *p = op.next_op;
        break;
      }
    }
    // ...then wait out the helpers already inside. When the last one leaves,
    // its claimed chunks are complete, so done == chunks follows and the
    // stack frame holding `op` (and the caller's body object) is safe to pop.
    while (op.helpers_inside != 0) helpers_idle_.wait(mutex_);
  }
  FLIGHTNN_DCHECK(op.done.load(std::memory_order_acquire) == op.chunks,
                  "parallel_for: ", op.done.load(), " of ", op.chunks,
                  " chunks done after helper drain");
  if (op.error) std::rethrow_exception(op.error);
}

// --- Global configuration ----------------------------------------------------

namespace {

constexpr int kMaxThreads = 1024;

support::Mutex g_config_mutex;
int g_threads FLIGHTNN_GUARDED_BY(g_config_mutex) = 0;  // 0 = not resolved
std::unique_ptr<ThreadPool> g_pool FLIGHTNN_GUARDED_BY(g_config_mutex);

int hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int resolve_default_threads() {
  if (const auto env = support::env_int("FLIGHTNN_NUM_THREADS")) {
    if (*env >= 1 && *env <= kMaxThreads) return static_cast<int>(*env);
    support::log_warn() << "FLIGHTNN_NUM_THREADS=" << *env << " outside [1, "
                        << kMaxThreads << "]; using hardware concurrency";
  }
  return hardware_threads();
}

}  // namespace

int num_threads() {
  const support::MutexLock lock(g_config_mutex);
  if (g_threads == 0) g_threads = resolve_default_threads();
  return g_threads;
}

void set_num_threads(int threads) {
  FLIGHTNN_CHECK(threads >= 0 && threads <= kMaxThreads,
                 "set_num_threads: ", threads, " outside [0, ", kMaxThreads,
                 "]");
  std::unique_ptr<ThreadPool> retired;
  {
    const support::MutexLock lock(g_config_mutex);
    g_threads = threads == 0 ? resolve_default_threads() : threads;
    if (g_pool && g_pool->size() != g_threads) retired = std::move(g_pool);
  }
  // Join the old pool's workers outside the lock so a straggler task that
  // itself consults the global configuration cannot deadlock the teardown.
  retired.reset();
}

// COLD_ALLOC: the pool is built once (and rebuilt only on a thread-count
// change); steady-state parallel_for calls hit the existing instance.
FLIGHTNN_COLD_ALLOC ThreadPool& global_pool() {
  const support::MutexLock lock(g_config_mutex);
  if (g_threads == 0) g_threads = resolve_default_threads();
  if (!g_pool || g_pool->size() != g_threads) {
    g_pool = std::make_unique<ThreadPool>(g_threads);
  }
  return *g_pool;
}

}  // namespace flightnn::runtime
