#include "runtime/memory_plan.hpp"

#include <algorithm>
#include <atomic>
#include <numeric>

#include "support/check.hpp"

namespace flightnn::runtime {

namespace {

// Live ranges are inclusive on both ends, so two intervals conflict iff the
// ranges intersect at any op.
bool temporally_overlap(const BufferInterval& a, const BufferInterval& b) {
  return a.def_op <= b.last_use_op && b.def_op <= a.last_use_op;
}

std::atomic<std::uint64_t> g_next_layout_id{1};

}  // namespace

std::size_t assign_arena_offsets(std::vector<BufferInterval>& intervals) {
  // Deterministic placement order: biggest first (classic best-fit heuristic
  // for interval coloring), earliest definition breaking ties so the layout
  // is stable across runs and platforms.
  std::vector<std::size_t> order(intervals.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&intervals](std::size_t a, std::size_t b) {
              const BufferInterval& ia = intervals[a];
              const BufferInterval& ib = intervals[b];
              if (ia.bytes != ib.bytes) return ia.bytes > ib.bytes;
              if (ia.def_op != ib.def_op) return ia.def_op < ib.def_op;
              if (ia.op != ib.op) return ia.op < ib.op;
              return static_cast<std::size_t>(ia.slot) <
                     static_cast<std::size_t>(ib.slot);
            });

  std::vector<std::size_t> placed;
  placed.reserve(intervals.size());
  // Busy byte ranges among placed intervals that temporally overlap the one
  // being placed; reused across iterations to stay allocation-light.
  std::vector<std::pair<std::size_t, std::size_t>> busy;
  std::size_t capacity = 0;

  for (const std::size_t index : order) {
    BufferInterval& interval = intervals[index];
    FLIGHTNN_CHECK(interval.def_op <= interval.last_use_op,
                   "memory plan: inverted live range for op ", interval.op);
    if (interval.bytes == 0) {
      interval.offset = 0;
      continue;
    }
    busy.clear();
    for (const std::size_t j : placed) {
      const BufferInterval& other = intervals[j];
      if (temporally_overlap(interval, other)) {
        busy.emplace_back(other.offset, other.offset + align_up(other.bytes));
      }
    }
    std::sort(busy.begin(), busy.end());

    // Best fit: the smallest gap between busy ranges that holds the request;
    // fall back to the open-ended region past the last conflicting byte.
    // Every busy bound is 64-byte aligned, so gaps and the tail cursor are
    // aligned by construction.
    const std::size_t need = align_up(interval.bytes);
    std::size_t best_offset = kUnassignedOffset;
    std::size_t best_gap = kUnassignedOffset;
    std::size_t cursor = 0;
    for (const auto& range : busy) {
      if (range.first > cursor) {
        const std::size_t gap = range.first - cursor;
        if (gap >= need && gap < best_gap) {
          best_offset = cursor;
          best_gap = gap;
        }
      }
      cursor = std::max(cursor, range.second);
    }
    interval.offset = best_offset == kUnassignedOffset ? cursor : best_offset;
    capacity = std::max(capacity, interval.offset + need);
    placed.push_back(index);
  }
  return align_up(capacity);
}

ArenaLayout::ArenaLayout(std::vector<BufferInterval> intervals,
                         std::uint32_t op_count)
    : id_(g_next_layout_id.fetch_add(1, std::memory_order_relaxed)),
      op_count_(op_count),
      intervals_(std::move(intervals)) {
  capacity_bytes_ = assign_arena_offsets(intervals_);
  table_.assign(static_cast<std::size_t>(op_count_) * kScratchSlotCount,
                Extent{});
  for (const BufferInterval& interval : intervals_) {
    FLIGHTNN_CHECK(interval.op < op_count_,
                   "memory plan: interval op ", interval.op,
                   " out of range (op_count ", op_count_, ")");
    Extent& extent =
        table_[static_cast<std::size_t>(interval.op) * kScratchSlotCount +
               static_cast<std::size_t>(interval.slot)];
    FLIGHTNN_CHECK(extent.offset == kUnassignedOffset,
                   "memory plan: duplicate buffer for op ", interval.op,
                   " slot ", static_cast<std::size_t>(interval.slot));
    extent.offset = interval.offset;
    extent.bytes = interval.bytes;
  }
}

}  // namespace flightnn::runtime
