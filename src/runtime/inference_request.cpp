#include "runtime/inference_request.hpp"

#include <cstring>
#include <utility>

#include "support/check.hpp"

namespace flightnn::runtime {

InferenceRequest InferenceRequest::from_image(tensor::Tensor image,
                                              std::uint64_t id) {
  InferenceRequest request;
  request.id = id;
  request.images.push_back(std::move(image));
  return request;
}

InferenceRequest InferenceRequest::from_nchw(const tensor::Tensor& batch,
                                             std::uint64_t id) {
  InferenceRequest request;
  request.id = id;
  split_nchw(batch, request.images);
  return request;
}

void split_nchw(const tensor::Tensor& batch,
                std::vector<tensor::Tensor>& images) {
  const auto& s = batch.shape();
  FLIGHTNN_CHECK(s.rank() == 4, "split_nchw: NCHW batch expected, got ",
                 s.to_string());
  const std::int64_t n = s[0];
  const std::int64_t image_numel = s[1] * s[2] * s[3];
  const tensor::Shape image_shape{s[1], s[2], s[3]};
  images.resize(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    auto& image = images[static_cast<std::size_t>(i)];
    if (image.shape() != image_shape) image = tensor::Tensor(image_shape);
    std::memcpy(image.data(), batch.data() + i * image_numel,
                static_cast<std::size_t>(image_numel) * sizeof(float));
  }
}

}  // namespace flightnn::runtime
