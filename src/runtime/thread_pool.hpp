#pragma once

// Fixed-size thread pool and the `parallel_for` primitive the inference
// kernels are built on. Deliberately work-stealing-free: one shared FIFO of
// tasks plus atomic chunk claiming inside each parallel_for, which is simple
// enough to reason about under ThreadSanitizer and fully sufficient for the
// regular, statically-partitionable loops in this codebase (batch elements,
// output-filter blocks, image planes).
//
// parallel_for is allocation-free: the per-invocation bookkeeping lives in a
// `ParallelOp` on the caller's stack, linked into an intrusive list the
// workers scan under the pool mutex, and the loop body is reached through a
// plain function pointer + context pointer rather than a std::function. This
// is what lets the batched runtime promise zero heap allocations in steady
// state (DESIGN.md §9).
//
// Design properties the tests rely on:
//   - The calling thread participates in its own parallel_for, so a pool of
//     size N uses N-1 workers and nested parallel_for calls issued from
//     inside a worker cannot deadlock: the nested caller claims chunks
//     itself and only waits on chunks actively running elsewhere.
//   - Results are bit-identical to serial execution for kernels that
//     partition their output: chunk boundaries never change what a single
//     output element computes, only which thread computes it.
//   - Exceptions thrown by a body are captured and rethrown on the calling
//     thread (first one wins; remaining chunks are skipped).
//   - The destructor drains pending submitted tasks before joining.

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "support/annotated_mutex.hpp"
#include "support/check.hpp"

namespace flightnn::runtime {

namespace detail {
struct ParallelOp;  // stack-allocated per parallel_for; defined in the .cpp
}  // namespace detail

class ThreadPool {
 public:
  // `threads` is the total parallelism including the calling thread; values
  // < 1 are clamped to 1 (a pool with no workers that runs everything
  // inline -- the serial path).
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const { return threads_; }

  // Fire-and-forget task. Runs inline when the pool has no workers. Pending
  // tasks are executed (not dropped) during destruction. (This path does
  // allocate a std::function; the hot inference loops only use parallel_for.)
  void submit(std::function<void()> task) FLIGHTNN_EXCLUDES(mutex_);

  // Run `fn` exactly once on each of the size()-1 worker threads (not on the
  // caller), rendezvousing so no worker runs it twice. Warm paths use this
  // to initialize thread_local state (planned arenas, buffer-pool prewarm)
  // on every thread before the first batch, upholding the zero-allocation
  // contract from the very first inference. Must be called from outside the
  // pool (a worker calling it would deadlock the rendezvous). Exceptions
  // thrown by `fn` are rethrown on the caller (first one wins; every worker
  // still completes the rendezvous). No-op when the pool has no workers.
  void for_each_worker(const std::function<void()>& fn)
      FLIGHTNN_EXCLUDES(mutex_);

  // Invoke `body(lo, hi)` over disjoint subranges covering [begin, end)
  // exactly once, with each subrange at least `grain` long (except possibly
  // the last). Blocks until every subrange has completed. Safe to call
  // concurrently from multiple threads and from inside another
  // parallel_for body. Performs no heap allocation.
  template <typename Body>
  void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                    const Body& body) {
    run_parallel(begin, end, grain,
                 [](void* ctx, std::int64_t lo, std::int64_t hi) {
                   (*static_cast<const Body*>(ctx))(lo, hi);
                 },
                 const_cast<void*>(static_cast<const void*>(&body)));
  }

 private:
  void worker_loop() FLIGHTNN_EXCLUDES(mutex_);
  // Type-erased core of parallel_for: `invoke(ctx, lo, hi)` runs the body.
  void run_parallel(std::int64_t begin, std::int64_t end, std::int64_t grain,
                    void (*invoke)(void*, std::int64_t, std::int64_t),
                    void* ctx) FLIGHTNN_EXCLUDES(mutex_);
  // Claim-and-run loop shared by the caller and helper workers. Runs
  // unlocked; only the failure path briefly takes the mutex to file the
  // first exception.
  void run_op_chunks(detail::ParallelOp& op) FLIGHTNN_EXCLUDES(mutex_);

  int threads_;
  std::vector<std::thread> workers_;
  support::Mutex mutex_;
  support::CondVar work_available_;
  support::CondVar helpers_idle_;
  std::deque<std::function<void()>> queue_ FLIGHTNN_GUARDED_BY(mutex_);
  // Intrusive list head of in-flight parallel_for ops (stack-allocated in
  // their callers; see ParallelOp in the .cpp for the pinning protocol).
  detail::ParallelOp* ops_head_ FLIGHTNN_GUARDED_BY(mutex_) = nullptr;
  bool stopping_ FLIGHTNN_GUARDED_BY(mutex_) = false;
};

// --- Process-wide thread configuration ---------------------------------------
//
// The inference kernels all run on one shared pool so that composed
// parallelism (BatchRunner across images, shift engine across filters) draws
// from a single budget instead of multiplying thread counts.

// Configured parallelism. Resolved on first use from FLIGHTNN_NUM_THREADS
// (clamped to [1, 1024]), falling back to std::thread::hardware_concurrency.
[[nodiscard]] int num_threads();

// Override the thread count; 0 restores the environment/hardware default.
// Takes effect on the next global_pool()/parallel_for call. Not safe to call
// concurrently with in-flight parallel work.
void set_num_threads(int threads);

// The shared pool, (re)built lazily to match num_threads().
ThreadPool& global_pool();

// parallel_for on the shared pool. At num_threads() == 1 this degrades to a
// direct `body(begin, end)` call -- the serial path, no pool involved.
template <typename Body>
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const Body& body) {
  FLIGHTNN_CHECK(grain > 0, "parallel_for: grain must be >= 1, got ", grain);
  if (end <= begin) return;
  if (num_threads() == 1) {
    // Serial fast path: no pool, no chunking, one call over the full range.
    body(begin, end);
    return;
  }
  global_pool().parallel_for(begin, end, grain, body);
}

// Per-call cost hint for the serial-fallback overload below: the caller's
// estimate of how long one loop iteration takes, in nanoseconds. Estimates
// only need to be order-of-magnitude right -- the threshold separates
// "microseconds of total work" from "hundreds of microseconds".
struct CostHint {
  double ns_per_item = 0.0;
};

// Total estimated work below which dispatching to the pool is a net loss:
// waking helpers costs a mutex round-trip plus a notify_all (~tens of
// microseconds end to end), so ranges cheaper than this run inline. Measured
// on the BENCH_shift_engine smoke workload, where tiny per-layer ranges made
// threads=4 run at 0.94x of 1-thread before this gate existed.
inline constexpr double kMinParallelNs = 20'000.0;

// parallel_for with a serial-fallback gate: when the estimated total cost
// (range * hint) is too small to amortize pool dispatch, the body runs
// inline on the caller -- same arithmetic, no pool traffic. A zero hint
// means "unknown" and always dispatches, matching the overload above.
template <typename Body>
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  CostHint cost, const Body& body) {
  FLIGHTNN_CHECK(grain > 0, "parallel_for: grain must be >= 1, got ", grain);
  if (end <= begin) return;
  if (num_threads() == 1 ||
      (cost.ns_per_item > 0.0 &&
       static_cast<double>(end - begin) * cost.ns_per_item < kMinParallelNs)) {
    body(begin, end);
    return;
  }
  global_pool().parallel_for(begin, end, grain, body);
}

}  // namespace flightnn::runtime
