#pragma once

// Per-thread scratch arena for the inference hot path. A fixed set of named
// slots, each a grow-once buffer: the first batch through a network sizes
// every slot to its high-water mark, after which repeat runs reuse the same
// storage and the steady state performs zero heap allocations (the
// zero-allocation contract of DESIGN.md §9, asserted by
// tests/arena_allocation_test).
//
// Lifetime rules:
//   - Arenas are strictly thread-local; a buffer reference obtained from
//     `current()` must not escape the calling thread or outlive the current
//     kernel invocation (any later arena call on the same slot may resize
//     and so invalidate it).
//   - Slots are owned by call sites, not by layers: two kernels may share a
//     slot only if they can never be live simultaneously on one thread.
//     Nested use of the same slot (conv calling back into something that
//     uses kConvAccumulator) is a bug; slots used by nestable helpers get
//     their own ids.
//   - Buffers keep their high-water capacity until the thread exits. Call
//     `trim()` to return the memory (tests; long-lived threads switching
//     workloads).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/annotations.hpp"

namespace flightnn::runtime {

// Slot ids. One per independent scratch use; see lifetime rules above.
enum class Scratch : std::size_t {
  kConvAccumulator = 0,   // int64 accumulator plane(s) for ShiftConv2d
  kConvOffsets,           // int32 im2row input-offset table for ShiftConv2d
  kLinearAccumulator,     // int64 accumulator row for ShiftLinear
  kQuantValues,           // int32 quantized activations (quantize_*_into)
  kGemmPackA,             // f32 packed A micro-panels (core/gemm)
  kSlotCount,
};

class ScratchArena {
 public:
  // The calling thread's arena.
  static ScratchArena& current();

  // Slot buffer resized to exactly `n` elements (contents unspecified).
  // Capacity only grows, so a request at or below the high-water mark does
  // not allocate -- the grow-once boundary where FLIGHTNN_HOT traversal
  // stops (the "dies out in steady state" half is asserted dynamically by
  // tests/arena_allocation_test).
  FLIGHTNN_COLD_ALLOC std::vector<std::int64_t>& i64(Scratch slot,
                                                     std::size_t n);
  FLIGHTNN_COLD_ALLOC std::vector<std::int32_t>& i32(Scratch slot,
                                                     std::size_t n);
  FLIGHTNN_COLD_ALLOC std::vector<float>& f32(Scratch slot, std::size_t n);

  // Total bytes currently reserved across all slots (observability).
  [[nodiscard]] std::size_t footprint_bytes() const;

  // Release all slot storage.
  void trim();

 private:
  ScratchArena() = default;

  static constexpr std::size_t kSlots =
      static_cast<std::size_t>(Scratch::kSlotCount);
  std::vector<std::int64_t> i64_[kSlots];
  std::vector<std::int32_t> i32_[kSlots];
  std::vector<float> f32_[kSlots];
};

}  // namespace flightnn::runtime
