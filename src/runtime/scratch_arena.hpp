#pragma once

// Per-thread scratch arena for the inference hot path, with two routes:
//
//  - Dynamic (grow-once): a fixed set of named slots, each a grow-once
//    buffer. The first batch through a network sizes every slot to its
//    high-water mark, after which repeat runs reuse the same storage and the
//    steady state performs zero heap allocations (the zero-allocation
//    contract of DESIGN.md §9, asserted by tests/arena_allocation_test).
//
//  - Planned: when a kernel passes a `PlanContext` (layout + op id), the
//    arena serves the buffer from one contiguous 64-byte-aligned block laid
//    out offline by the memory planner (DESIGN.md §15). Adopting a layout is
//    the only allocation; every fetch afterwards is an O(1) table lookup
//    into pre-assigned offsets, so there is no first-batch warmup growth at
//    all. A fetch whose planned extent is missing or too small falls back to
//    the dynamic slot and bumps `plan_misses()` -- the differential tests
//    assert zero misses, so a miss in production is a planner bug that
//    degrades to correct-but-unplanned, never to UB.
//
// Lifetime rules:
//   - Arenas are strictly thread-local; a buffer obtained from `current()`
//     must not escape the calling thread or outlive the current kernel
//     invocation (any later arena call on the same slot may resize or remap
//     and so invalidate it).
//   - Slots are owned by call sites, not by layers: two kernels may share a
//     slot only if they can never be live simultaneously on one thread.
//     Nested use of the same slot (conv calling back into something that
//     uses kConvAccumulator) is a bug; slots used by nestable helpers get
//     their own ids. The planner encodes the same rule as temporal
//     disjointness of intervals.
//   - Buffers keep their high-water capacity until the thread exits. Call
//     `trim()` to return the memory (tests; long-lived threads switching
//     workloads).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/memory_plan.hpp"
#include "support/annotations.hpp"

namespace flightnn::runtime {

class ScratchArena {
 public:
  // The calling thread's arena.
  static ScratchArena& current();

  // Dynamic route: slot buffer resized to exactly `n` elements (contents
  // unspecified). Capacity only grows, so a request at or below the
  // high-water mark does not allocate -- the grow-once boundary where
  // FLIGHTNN_HOT traversal stops (the "dies out in steady state" half is
  // asserted dynamically by tests/arena_allocation_test).
  FLIGHTNN_COLD_ALLOC std::vector<std::int64_t>& i64(Scratch slot,
                                                     std::size_t n);
  FLIGHTNN_COLD_ALLOC std::vector<std::int32_t>& i32(Scratch slot,
                                                     std::size_t n);
  FLIGHTNN_COLD_ALLOC std::vector<float>& f32(Scratch slot, std::size_t n);

  // Planned route: pointer to `n` elements for (ctx->op, slot) inside the
  // adopted arena block, valid until the next adopt_layout/trim on this
  // thread. Null or layout-less `ctx`, an unplanned (op, slot) pair, or an
  // undersized extent all fall back to the dynamic slot above (counting a
  // plan miss when a layout was present). Adoption of a not-yet-seen layout
  // happens lazily on first fetch, which is the only allocating case.
  FLIGHTNN_COLD_ALLOC std::int64_t* i64p(const PlanContext* ctx, Scratch slot,
                                         std::size_t n);
  FLIGHTNN_COLD_ALLOC std::int32_t* i32p(const PlanContext* ctx, Scratch slot,
                                         std::size_t n);
  FLIGHTNN_COLD_ALLOC float* f32p(const PlanContext* ctx, Scratch slot,
                                  std::size_t n);

  // Eagerly size this thread's block for `layout` (warm path: BatchRunner
  // calls this on every worker before the first batch so that not even the
  // lazy adoption allocates mid-inference). The block is grow-only across
  // layouts; adopting a smaller layout reuses the existing storage.
  FLIGHTNN_COLD_ALLOC void adopt_layout(const ArenaLayout& layout);

  // Capacity of the currently adopted layout (0 when none).
  [[nodiscard]] std::size_t planned_capacity_bytes() const {
    return planned_capacity_;
  }
  // Planned fetches served from the arena block / fetches that had a layout
  // but fell back dynamic. Misses are planner bugs; tests assert zero.
  [[nodiscard]] std::uint64_t planned_hits() const { return planned_hits_; }
  [[nodiscard]] std::uint64_t plan_misses() const { return plan_misses_; }
  void reset_plan_counters() {
    planned_hits_ = 0;
    plan_misses_ = 0;
  }

  // Total bytes currently reserved across all slots plus the planned block
  // (observability; feeds the BENCH_*.json memory fields).
  [[nodiscard]] std::size_t footprint_bytes() const;

  // Release all slot storage and the planned block.
  void trim();

 private:
  ScratchArena() = default;

  // Shared planned-route core: arena pointer for (ctx->op, slot) holding at
  // least `bytes`, or nullptr when the caller should use the dynamic slot.
  FLIGHTNN_COLD_ALLOC void* planned_fetch(const PlanContext* ctx, Scratch slot,
                                          std::size_t bytes);

  static constexpr std::size_t kSlots = kScratchSlotCount;
  std::vector<std::int64_t> i64_[kSlots];
  std::vector<std::int32_t> i32_[kSlots];
  std::vector<float> f32_[kSlots];

  // Planned block. `layout_id_` (not a pointer) identifies the adopted
  // layout so a destroyed network's layout is never dereferenced: fetches
  // always go through the caller's live `ctx->layout`.
  std::unique_ptr<std::byte[]> block_;
  std::size_t block_bytes_ = 0;  // usable aligned capacity of block_
  std::byte* base_ = nullptr;    // 64-byte-aligned start within block_
  std::uint64_t layout_id_ = 0;
  std::size_t planned_capacity_ = 0;
  std::uint64_t planned_hits_ = 0;
  std::uint64_t plan_misses_ = 0;
};

}  // namespace flightnn::runtime
